// Package obs is the pipeline's observability layer: a zero-dependency,
// low-overhead metrics core shared by the PG publisher, the Phase-2
// algorithms, and the query-serving engine. It provides three instrument
// kinds — monotone Counters, last-value Gauges, and streaming latency
// Histograms over fixed log-spaced buckets — plus a Span/Phase timer API,
// all collected in a Registry with deterministically ordered text and JSON
// exporters, optional expvar publication, and an optional debug HTTP server
// (net/http/pprof, /metrics, /healthz; see server.go).
//
// # The nil fast path
//
// Instrumentation must cost nothing when nobody is looking. Every method in
// this package is safe on a nil receiver: a nil *Registry hands out nil
// instruments, and a nil *Counter/*Gauge/*Histogram turns every operation
// into a single branch. Hot paths therefore hold instrument pointers
// unconditionally —
//
//	c := cfg.Metrics.Counter("pg.phase1.rows") // nil when Metrics is nil
//	...
//	c.Add(int64(n))                            // one predictable branch
//
// — and pay one well-predicted comparison per call site when metrics are
// disabled. The instrumentation-overhead benchmark (BenchmarkPublishParallel
// vs the metrics-on variant in the repository root) pins this at <2%.
//
// # Determinism
//
// Export ordering is deterministic: instruments print sorted by name, and
// identical observation sequences produce byte-identical exports regardless
// of how many goroutines recorded them (TestRegistryExportDeterministic).
// Counter values the pipeline records (rows scanned, groups built, lattice
// nodes evaluated, ...) are themselves worker-count-invariant, mirroring the
// byte-identical-output contract of pg.Publish; timing histograms are the
// one instrument whose *values* vary run to run.
package obs

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing int64. The zero value is ready to
// use; a nil *Counter discards all updates (the disabled-metrics fast path).
type Counter struct {
	v atomic.Int64
}

// Add increases the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc is Add(1).
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value-wins int64 instrument (sizes, configuration knobs,
// high-water marks). The zero value is ready; nil discards updates.
type Gauge struct {
	v atomic.Int64
}

// Set stores n. No-op on a nil receiver.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Value returns the last value set (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram bucket geometry: values 0..2·sub-1 get exact unit buckets;
// above that, each power-of-two octave is divided into histSub log-spaced
// sub-buckets, giving a worst-case relative quantile error of 1/histSub
// (±6.25% at histSub = 16) across the full int64 range.
const (
	histSubBits = 4
	histSub     = 1 << histSubBits // sub-buckets per octave
	histExact   = 2 * histSub      // values below this index themselves
	// histBuckets covers octaves up to 2^63.
	histBuckets = histExact + (64-histSubBits-1)*histSub
)

// Histogram is a streaming distribution sketch over fixed log-spaced
// buckets: constant memory, lock-free atomic recording, and p50/p95/p99
// export with bounded relative error. Negative observations are clamped to
// zero (the instrument is meant for durations and sizes). The zero value is
// ready; a nil *Histogram discards observations.
type Histogram struct {
	unit    string
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64 // valid only when count > 0
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// bucketOf maps a non-negative value to its bucket index (monotone in v).
func bucketOf(v int64) int {
	u := uint64(v)
	if u < histExact {
		return int(u)
	}
	n := bits.Len64(u) // >= histSubBits+2
	sub := (u >> (n - 1 - histSubBits)) & (histSub - 1)
	return histExact + (n-histSubBits-2)*histSub + int(sub)
}

// bucketLo returns the smallest value mapping to bucket i, and the bucket's
// width (bucketLo(i)+width(i) is the next bucket's low bound).
func bucketLo(i int) (lo, width int64) {
	if i < histExact {
		return int64(i), 1
	}
	o := (i - histExact) / histSub
	sub := (i - histExact) % histSub
	n := o + histSubBits + 2
	width = int64(1) << (n - 1 - histSubBits)
	return int64(1)<<(n-1) + int64(sub)*width, width
}

// Observe records one value. No-op on a nil receiver.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[bucketOf(v)].Add(1)
	h.sum.Add(v)
	if h.count.Add(1) == 1 {
		// First observation seeds min/max; the CAS loops below converge even
		// when racing with it.
		h.min.Store(v)
		h.max.Store(v)
	}
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations (0 on nil).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Quantile returns the q-quantile (q in [0,1]) as the midpoint of the bucket
// holding the q·Count-th observation, clamped to the observed min/max. It
// returns 0 when the histogram is empty or nil.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	if rank < 0 {
		rank = 0
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum > rank {
			lo, width := bucketLo(i)
			v := lo + (width-1)/2
			if mn := h.min.Load(); v < mn {
				v = mn
			}
			if mx := h.max.Load(); v > mx {
				v = mx
			}
			return v
		}
	}
	return h.max.Load()
}

// Span is an in-flight timed section started by Registry.Span. The zero
// value (from a nil registry) is inert.
type Span struct {
	h  *Histogram
	t0 time.Time
}

// End records the span's elapsed time into its histogram and returns it
// (0 on an inert span).
func (s Span) End() time.Duration {
	if s.h == nil {
		return 0
	}
	d := time.Since(s.t0)
	s.h.Observe(d.Nanoseconds())
	return d
}

// Registry is a process-wide collection of named instruments. Lookup is
// get-or-create: the same name always yields the same instrument, so
// wiring code can re-resolve names instead of threading pointers. All
// methods are safe for concurrent use, and all are no-ops returning nil
// instruments on a nil *Registry — the one-branch disabled path.
//
// Names are dot-separated lowercase paths ("pg.phase1.rows"); the full
// vocabulary the pipeline emits is catalogued in docs/OBSERVABILITY.md.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it on first
// use. Returns nil on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
// Returns nil on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given unit on first use (the unit of an existing histogram is kept).
// Returns nil on a nil registry.
func (r *Registry) Histogram(name, unit string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{unit: unit}
		r.hists[name] = h
	}
	return h
}

// Span starts a timer recorded into the nanosecond histogram name when the
// returned Span's End is called. On a nil registry the Span is inert.
func (r *Registry) Span(name string) Span {
	if r == nil {
		return Span{}
	}
	return Span{h: r.Histogram(name, "ns"), t0: time.Now()}
}

// Phase times fn into the nanosecond histogram name — the closure form of
// Span for whole pipeline phases. On a nil registry it just runs fn.
func (r *Registry) Phase(name string, fn func()) {
	sp := r.Span(name)
	fn()
	sp.End()
}

// sortedKeys returns the sorted names of one instrument map; callers hold
// the registry lock while copying.
func sortedKeys[T any](m map[string]T) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// String summarizes the registry's size (the full rendering is WriteText).
func (r *Registry) String() string {
	if r == nil {
		return "<nil registry>"
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return fmt.Sprintf("%d counters, %d gauges, %d histograms",
		len(r.counters), len(r.gauges), len(r.hists))
}
