package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// This file is the serving half of the registry: an optional debug HTTP
// server exposing the metrics exporters next to the runtime's profiling
// endpoints, so one `-debug-addr :6060` flag lights up the whole
// observability surface of a binary:
//
//	/metrics        text exporter (WriteText)
//	/metrics.json   JSON exporter (WriteJSON)
//	/healthz        liveness probe ("ok")
//	/debug/vars     expvar (includes registries published via PublishExpvar)
//	/debug/pprof/   CPU/heap/goroutine/... profiles for `go tool pprof`
//
// The server uses its own mux — nothing is registered on
// http.DefaultServeMux — so embedding applications keep control of their
// own routing.

// DebugServer is a running debug endpoint; Close shuts it down.
type DebugServer struct {
	// Addr is the bound listen address (resolves ":0" to the real port).
	Addr string
	srv  *http.Server
	lis  net.Listener
}

// Handler returns the debug mux serving the endpoints above. Usable on a
// nil registry (the metrics endpoints render empty documents).
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		r.WriteText(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		r.WriteJSON(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts the debug server on addr (e.g. ":6060", or ":0" to pick a
// free port) and returns once the listener is accepting. The server runs
// until Close. Works on a nil registry — profiling and health stay useful
// even with metrics disabled.
func (r *Registry) Serve(addr string) (*DebugServer, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug server: %w", err)
	}
	srv := &http.Server{Handler: r.Handler(), ReadHeaderTimeout: 10 * time.Second}
	ds := &DebugServer{Addr: lis.Addr().String(), srv: srv, lis: lis}
	go srv.Serve(lis) //nolint:errcheck // Serve always returns ErrServerClosed after Close
	return ds, nil
}

// Close shuts the server down and releases the listener.
func (s *DebugServer) Close() error {
	if s == nil || s.srv == nil {
		return nil
	}
	return s.srv.Close()
}
