// Package stats provides the small statistical utilities shared by the
// mining and query layers: weighted histograms, contingency tables,
// confusion matrices and summary accumulators.
package stats

import (
	"fmt"
	"math"
)

// Histogram is a weighted count vector over an integer-coded domain.
type Histogram struct {
	counts []float64
	total  float64
}

// NewHistogram creates a histogram over n codes.
func NewHistogram(n int) (*Histogram, error) {
	if n < 1 {
		return nil, fmt.Errorf("stats: histogram needs at least 1 bin, got %d", n)
	}
	return &Histogram{counts: make([]float64, n)}, nil
}

// Add accumulates weight w at code x.
func (h *Histogram) Add(x int32, w float64) error {
	if x < 0 || int(x) >= len(h.counts) {
		return fmt.Errorf("stats: code %d out of [0,%d)", x, len(h.counts))
	}
	if w < 0 || math.IsNaN(w) {
		return fmt.Errorf("stats: weight %v invalid", w)
	}
	h.counts[x] += w
	h.total += w
	return nil
}

// Count returns the weight at code x.
func (h *Histogram) Count(x int32) float64 { return h.counts[x] }

// Total returns the accumulated weight.
func (h *Histogram) Total() float64 { return h.total }

// Counts returns the underlying vector (read-only).
func (h *Histogram) Counts() []float64 { return h.counts }

// Mode returns the code with the largest weight.
func (h *Histogram) Mode() int32 {
	best, bi := math.Inf(-1), int32(0)
	for i, c := range h.counts {
		if c > best {
			best, bi = c, int32(i)
		}
	}
	return bi
}

// Entropy returns the Shannon entropy (nats) of the normalized histogram.
func (h *Histogram) Entropy() float64 {
	if h.total == 0 {
		return 0
	}
	e := 0.0
	for _, c := range h.counts {
		if c == 0 {
			continue
		}
		p := c / h.total
		e -= p * math.Log(p)
	}
	return e
}

// Confusion is a classification confusion matrix: rows are true classes,
// columns predicted.
type Confusion struct {
	n     int
	cells []int
}

// NewConfusion creates an n-class confusion matrix.
func NewConfusion(n int) (*Confusion, error) {
	if n < 2 {
		return nil, fmt.Errorf("stats: confusion matrix needs at least 2 classes, got %d", n)
	}
	return &Confusion{n: n, cells: make([]int, n*n)}, nil
}

// Observe records one (true, predicted) pair.
func (c *Confusion) Observe(truth, predicted int) error {
	if truth < 0 || truth >= c.n || predicted < 0 || predicted >= c.n {
		return fmt.Errorf("stats: class pair (%d,%d) out of [0,%d)", truth, predicted, c.n)
	}
	c.cells[truth*c.n+predicted]++
	return nil
}

// Cell returns the count of (true, predicted).
func (c *Confusion) Cell(truth, predicted int) int { return c.cells[truth*c.n+predicted] }

// Accuracy is the trace fraction.
func (c *Confusion) Accuracy() float64 {
	total, correct := 0, 0
	for t := 0; t < c.n; t++ {
		for p := 0; p < c.n; p++ {
			v := c.cells[t*c.n+p]
			total += v
			if t == p {
				correct += v
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}

// Recall returns the per-class recall (diagonal over row sum); NaN-free:
// classes with no true examples report 0.
func (c *Confusion) Recall(class int) float64 {
	row := 0
	for p := 0; p < c.n; p++ {
		row += c.cells[class*c.n+p]
	}
	if row == 0 {
		return 0
	}
	return float64(c.cells[class*c.n+class]) / float64(row)
}

// Summary accumulates a stream of values for mean and variance.
type Summary struct {
	n    int
	mean float64
	m2   float64
}

// Observe adds one value (Welford's algorithm).
func (s *Summary) Observe(x float64) {
	s.n++
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// N returns the number of observations.
func (s *Summary) N() int { return s.n }

// Mean returns the running mean (0 before any observation).
func (s *Summary) Mean() float64 { return s.mean }

// Variance returns the sample variance (0 with fewer than 2 observations).
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Stddev returns the sample standard deviation.
func (s *Summary) Stddev() float64 { return math.Sqrt(s.Variance()) }
