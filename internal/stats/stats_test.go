package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewHistogram(0); err == nil {
		t.Fatal("empty histogram: want error")
	}
	for _, x := range []int32{0, 1, 1, 3} {
		if err := h.Add(x, 2); err != nil {
			t.Fatal(err)
		}
	}
	if h.Total() != 8 || h.Count(1) != 4 || h.Count(2) != 0 {
		t.Fatalf("counts wrong: %v", h.Counts())
	}
	if h.Mode() != 1 {
		t.Fatalf("Mode = %d", h.Mode())
	}
	if err := h.Add(9, 1); err == nil {
		t.Fatal("out-of-range add: want error")
	}
	if err := h.Add(0, -1); err == nil {
		t.Fatal("negative weight: want error")
	}
	if err := h.Add(0, math.NaN()); err == nil {
		t.Fatal("NaN weight: want error")
	}
	// Entropy of (2,4,0,2)/8 = entropy of (1/4, 1/2, 1/4).
	want := -(0.25*math.Log(0.25) + 0.5*math.Log(0.5) + 0.25*math.Log(0.25))
	if math.Abs(h.Entropy()-want) > 1e-12 {
		t.Fatalf("Entropy = %v, want %v", h.Entropy(), want)
	}
	empty, _ := NewHistogram(3)
	if empty.Entropy() != 0 {
		t.Fatal("empty entropy must be 0")
	}
}

func TestConfusion(t *testing.T) {
	c, err := NewConfusion(3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewConfusion(1); err == nil {
		t.Fatal("single class: want error")
	}
	pairs := [][2]int{{0, 0}, {0, 0}, {0, 1}, {1, 1}, {2, 0}}
	for _, p := range pairs {
		if err := c.Observe(p[0], p[1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Observe(3, 0); err == nil {
		t.Fatal("class out of range: want error")
	}
	if c.Cell(0, 0) != 2 || c.Cell(0, 1) != 1 || c.Cell(2, 0) != 1 {
		t.Fatal("cells wrong")
	}
	if math.Abs(c.Accuracy()-3.0/5) > 1e-12 {
		t.Fatalf("Accuracy = %v", c.Accuracy())
	}
	if math.Abs(c.Recall(0)-2.0/3) > 1e-12 {
		t.Fatalf("Recall(0) = %v", c.Recall(0))
	}
	if c.Recall(2) != 0 {
		t.Fatalf("Recall(2) = %v, want 0", c.Recall(2))
	}
	fresh, _ := NewConfusion(2)
	if fresh.Accuracy() != 0 || fresh.Recall(1) != 0 {
		t.Fatal("empty confusion metrics must be 0")
	}
}

func TestSummary(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Variance() != 0 || s.N() != 0 {
		t.Fatal("zero-value Summary wrong")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Observe(x)
	}
	if s.N() != 8 || math.Abs(s.Mean()-5) > 1e-12 {
		t.Fatalf("Mean = %v N = %d", s.Mean(), s.N())
	}
	// Sample variance of that classic set is 32/7.
	if math.Abs(s.Variance()-32.0/7) > 1e-12 {
		t.Fatalf("Variance = %v, want %v", s.Variance(), 32.0/7)
	}
	if math.Abs(s.Stddev()-math.Sqrt(32.0/7)) > 1e-12 {
		t.Fatalf("Stddev = %v", s.Stddev())
	}
}

// Property: Welford matches the two-pass formulas.
func TestSummaryMatchesTwoPass(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) < 2 {
			return true
		}
		if len(raw) > 200 {
			raw = raw[:200]
		}
		var s Summary
		xs := make([]float64, len(raw))
		sum := 0.0
		for i, r := range raw {
			xs[i] = float64(r) / 7
			s.Observe(xs[i])
			sum += xs[i]
		}
		mean := sum / float64(len(xs))
		v := 0.0
		for _, x := range xs {
			v += (x - mean) * (x - mean)
		}
		v /= float64(len(xs) - 1)
		return math.Abs(s.Mean()-mean) < 1e-9 && math.Abs(s.Variance()-v) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
