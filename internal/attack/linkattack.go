package attack

import (
	"fmt"

	"pgpub/internal/generalize"
	"pgpub/internal/pg"
	"pgpub/internal/privacy"
)

// Adversary models an attacker per Section V: background knowledge about
// the victim (a pdf over U^s), a corruption set 𝒞, and optional background
// knowledge about other individuals (the X_j of Equation 19; uniform when
// absent).
type Adversary struct {
	// Background is the prior pdf about the victim's sensitive value.
	Background privacy.PDF
	// Corrupted is 𝒞 ⊆ ℰ: individual IDs whose sensitive status the
	// adversary learned outside D* (exact value for microdata owners,
	// extraneousness for the others).
	Corrupted map[int]bool
	// OthersBackground optionally returns the adversary's pdf about
	// another individual's sensitive value (Equation 19's X_j). nil means
	// uniform for everyone.
	OthersBackground func(id int) privacy.PDF
}

// Crucial is the adversary's view of the crucial tuple after steps A1–A2,
// however it was obtained: read directly off the publication (LinkAttack)
// or reconstructed from served query answers (internal/attackfleet). Y is
// the observed — possibly perturbed — sensitive value, G the source
// QI-group size, and Candidates the candidate set 𝒪 in ascending ID order.
type Crucial struct {
	Y          int32
	G          int
	Candidates []int
}

// Result carries everything an attack computes, mirroring the symbols of
// Sections V and VI.
type Result struct {
	// Crucial is the tuple t found at step A1, and Y its observed value.
	Crucial pg.Row
	Y       int32
	// Candidates is 𝒪 (step A2): individuals other than the victim whose
	// QI vectors generalize to t's. E is e = |𝒪|.
	Candidates []int
	// Alpha = |𝒞 ∩ 𝒪|; Beta = non-extraneous members of 𝒞 ∩ 𝒪.
	Alpha, Beta int
	// G is the membership probability g of Equation 13.
	G float64
	// H is the ownership probability h of Equation 14.
	H float64
	// Prior and Posterior are the confidences of Equations 5 and 10.
	Prior, Posterior float64
	// PosteriorPDF is the full posterior of Equation 9.
	PosteriorPDF privacy.PDF
}

// CandidatesIn computes step A2: the candidate set 𝒪 — every individual
// other than the victim whose QI vector the crucial box generalizes — in
// ascending ID order.
func CandidatesIn(ext *External, box generalize.Box, victim int) []int {
	var out []int
	for id := 0; id < ext.Len(); id++ {
		if id == victim {
			continue
		}
		if box.Covers(ext.QIOf(id)) {
			out = append(out, id)
		}
	}
	return out
}

// LinkAttack performs the corruption-aided linking attack A1–A3 of Section
// V-A against a PG publication, computing the exact Bayesian posterior of
// Section V-B / VI. The victim must be a microdata owner, must not be in 𝒞,
// and the predicate is the attack target Q.
func LinkAttack(pub *pg.Published, ext *External, victim int, adv Adversary, q privacy.Predicate) (*Result, error) {
	if victim < 0 || victim >= ext.Len() {
		return nil, fmt.Errorf("attack: victim %d outside the external database", victim)
	}

	// A1: the crucial tuple.
	t, ok := pub.FindCrucial(ext.QIOf(victim))
	if !ok {
		return nil, fmt.Errorf("attack: no crucial tuple for victim %d", victim)
	}

	// A2 + A3: candidate set and posterior, through the shared estimator.
	res, err := Posterior(ext, victim, adv, q, pub.P, Crucial{
		Y: t.Value, G: t.G, Candidates: CandidatesIn(ext, t.Box, victim),
	})
	if err != nil {
		return nil, err
	}
	res.Crucial = t
	return res, nil
}

// Posterior performs step A3 of the linking attack against an
// already-located crucial tuple: the exact Bayesian derivation of Equations
// 13–19 followed by the posterior pdf of Equation 9. It is the per-victim
// estimator shared by LinkAttack (which reads the crucial tuple off the
// publication) and the HTTP attack fleet (which reconstructs it from served
// query answers) — both call it with identical inputs, so their breach
// estimates agree bit for bit.
func Posterior(ext *External, victim int, adv Adversary, q privacy.Predicate, p float64, cr Crucial) (*Result, error) {
	if victim < 0 || victim >= ext.Len() {
		return nil, fmt.Errorf("attack: victim %d outside the external database", victim)
	}
	if ext.IsExtraneous(victim) {
		return nil, fmt.Errorf("attack: victim %d is extraneous; linking attacks presuppose o ∈ D", victim)
	}
	if adv.Corrupted[victim] {
		return nil, fmt.Errorf("attack: victim %d is corrupted; nothing left to infer", victim)
	}
	if err := adv.Background.Validate(); err != nil {
		return nil, fmt.Errorf("attack: invalid background knowledge: %w", err)
	}
	domain := ext.Table().Schema.SensitiveDomain()
	if len(adv.Background) != domain {
		return nil, fmt.Errorf("attack: background over %d values, domain is %d", len(adv.Background), domain)
	}
	if len(q) != domain {
		return nil, fmt.Errorf("attack: predicate over %d values, domain is %d", len(q), domain)
	}
	if cr.G < 1 {
		return nil, fmt.Errorf("attack: crucial tuple with group size %d", cr.G)
	}
	if !ext.Table().Schema.Sensitive.Valid(cr.Y) {
		return nil, fmt.Errorf("attack: observed value %d outside the sensitive domain", cr.Y)
	}
	res := &Result{Y: cr.Y, Candidates: cr.Candidates}

	// Split 𝒪 into corrupted non-extraneous (known values x_1..x_β),
	// corrupted extraneous (known absent), and uncorrupted (Equation 19
	// applies).
	u := (1 - p) / float64(domain)
	tg := float64(cr.G)
	var knownValues []int32
	var uncorrupted []int
	for _, id := range res.Candidates {
		if adv.Corrupted[id] {
			res.Alpha++
			if v, ok := ext.SensitiveOf(id); ok {
				res.Beta++
				knownValues = append(knownValues, v)
			}
			continue
		}
		uncorrupted = append(uncorrupted, id)
	}

	// Equation 13: g = (t.G - 1 - β) / (e - α). With no uncorrupted
	// candidates left every remaining slot is already accounted for; g = 0.
	slots := float64(cr.G-1) - float64(res.Beta)
	if slots < 0 {
		// More confirmed members than the group holds: the scenario is
		// inconsistent with the publication (cannot happen for honest
		// corruption oracles).
		return nil, fmt.Errorf("attack: %d confirmed members exceed group size %d", res.Beta+1, cr.G)
	}
	if len(uncorrupted) > 0 {
		res.G = slots / float64(len(uncorrupted))
	}
	if res.G > 1 {
		res.G = 1
	}

	y := cr.Y
	// Equation 15: P[o owns t, y] = (1/t.G)(p·P[X=y] + (1-p)/|U^s|).
	pOwn := (p*adv.Background[y] + u) / tg

	// Equation 17: P[y] = P[o owns t, y] + Σ_i P[o_i owns t, y] +
	// Σ_j P[o_j owns t, y].
	pY := pOwn
	for _, x := range knownValues {
		// Equation 18: P[o_i owns t, y] = P[x_i→y]/t.G.
		trans := u
		if x == y {
			trans += p
		}
		pY += trans / tg
	}
	for _, id := range uncorrupted {
		// Equation 19: P[o_j owns t, y] = (g/t.G)(p·P[X_j=y] + (1-p)/|U^s|).
		var pj float64
		if adv.OthersBackground != nil {
			pdf := adv.OthersBackground(id)
			if len(pdf) != domain {
				return nil, fmt.Errorf("attack: others-background for %d over %d values, domain is %d", id, len(pdf), domain)
			}
			pj = pdf[y]
		} else {
			pj = 1 / float64(domain)
		}
		pY += res.G / tg * (p*pj + u)
	}

	// Equation 14: h = P[o owns t, y] / P[y].
	if pY == 0 {
		// p = 1 and every prior assigns zero mass to y: the observation is
		// impossible under the adversary's model; fall back to the prior.
		res.H = 0
	} else {
		res.H = pOwn / pY
	}
	if res.H > 1 {
		res.H = 1
	}

	prior, err := adv.Background.Confidence(q)
	if err != nil {
		return nil, err
	}
	res.Prior = prior
	res.PosteriorPDF, err = privacy.Posterior(adv.Background, y, p, res.H)
	if err != nil {
		return nil, err
	}
	res.Posterior, err = res.PosteriorPDF.Confidence(q)
	if err != nil {
		return nil, err
	}
	return res, nil
}
