// Package attack implements the adversary model of Section V: the external
// database ℰ (a voter-registration-style identity directory), corruption
// sets 𝒞 (Definition 1), the corruption-aided linking attack A1–A3 against a
// PG publication with the exact posterior derivation of Equations 13–19, the
// conventional-generalization attacks behind Lemmas 1 and 2, and a
// Monte-Carlo harness that validates the analytic bounds empirically.
package attack

import (
	"fmt"
	"reflect"

	"pgpub/internal/dataset"
)

// External is the external database ℰ: it maps every individual's identity
// to a QI vector, and knows which individuals own microdata rows. People
// with no microdata row are extraneous (their sensitive value is ∅).
type External struct {
	table *dataset.Table
	qi    [][]int32
	rowOf []int // individual -> microdata row, or -1 if extraneous
}

// NewExternal builds ℰ from the microdata and a voter list of QI vectors
// indexed by individual ID. The microdata's Owners must point into the voter
// list, and each owner's voter QI vector must equal their microdata QI
// vector (the equi-join premise of linking attacks).
func NewExternal(d *dataset.Table, voterQI [][]int32) (*External, error) {
	e := &External{table: d, qi: voterQI, rowOf: make([]int, len(voterQI))}
	for id := range e.rowOf {
		e.rowOf[id] = -1
		if len(voterQI[id]) != d.Schema.D() {
			return nil, fmt.Errorf("attack: individual %d has %d QI components, schema wants %d",
				id, len(voterQI[id]), d.Schema.D())
		}
	}
	for i := 0; i < d.Len(); i++ {
		o := d.Owner(i)
		if o < 0 || o >= len(voterQI) {
			return nil, fmt.Errorf("attack: row %d owner %d outside the voter list", i, o)
		}
		if e.rowOf[o] != -1 {
			return nil, fmt.Errorf("attack: individual %d owns two rows", o)
		}
		if !reflect.DeepEqual(voterQI[o], d.QIVector(i)) {
			return nil, fmt.Errorf("attack: individual %d voter QI %v != microdata QI %v",
				o, voterQI[o], d.QIVector(i))
		}
		e.rowOf[o] = i
	}
	return e, nil
}

// Len returns |ℰ|.
func (e *External) Len() int { return len(e.qi) }

// QIOf returns the QI vector of an individual.
func (e *External) QIOf(id int) []int32 { return e.qi[id] }

// IsExtraneous reports whether the individual has no microdata row.
func (e *External) IsExtraneous(id int) bool { return e.rowOf[id] < 0 }

// RowOf returns the individual's microdata row, or -1 if extraneous.
func (e *External) RowOf(id int) int { return e.rowOf[id] }

// SensitiveOf is the corruption oracle: the exact sensitive value of a
// non-extraneous individual. ok is false for extraneous people (whose value
// is ∅).
func (e *External) SensitiveOf(id int) (int32, bool) {
	if e.rowOf[id] < 0 {
		return 0, false
	}
	return e.table.Sensitive(e.rowOf[id]), true
}

// Table returns the microdata backing ℰ (ground truth for simulations).
func (e *External) Table() *dataset.Table { return e.table }
