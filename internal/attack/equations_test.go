package attack

import (
	"math"
	"testing"

	"pgpub/internal/dataset"
	"pgpub/internal/hierarchy"
	"pgpub/internal/pg"
	"pgpub/internal/privacy"
)

// This file validates the posterior machinery of Equations 13–19 against
// hand-computed values on a fully controlled scenario: a single QI attribute
// over codes 0..3, four owners with QI 0,1,2,3, and one extraneous
// individual with QI 1. KD at k = 2 deterministically yields the cells
// [0,1] and [2,3].

// tinySchema: one QI attribute (codes 0..3), sensitive domain of 4.
func tinyScenario(t *testing.T, p float64, seed int64) (*dataset.Table, *External, *pg.Published) {
	t.Helper()
	s := dataset.MustSchema(
		[]*dataset.Attribute{dataset.MustIntAttribute("Q", 0, 3)},
		dataset.MustAttribute("S", "s0", "s1", "s2", "s3"),
	)
	tbl := dataset.NewTable(s)
	// Owners 0..3 with QI = owner ID and sensitive = owner ID.
	for i := int32(0); i < 4; i++ {
		tbl.MustAppend([]int32{i, i})
	}
	voters := [][]int32{{0}, {1}, {2}, {3}, {1}} // individual 4 is extraneous, QI 1
	ext, err := NewExternal(tbl, voters)
	if err != nil {
		t.Fatal(err)
	}
	hiers := []*hierarchy.Hierarchy{hierarchy.MustInterval(4, 2)}
	pub, err := pg.Publish(tbl, hiers, pg.Config{K: 2, P: p, Algorithm: pg.KD, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	if pub.Len() != 2 {
		t.Fatalf("expected 2 cells, got %d", pub.Len())
	}
	return tbl, ext, pub
}

// transition is P[a→b] of Equation 11.
func transition(a, b int32, p float64, domain int) float64 {
	u := (1 - p) / float64(domain)
	if a == b {
		return p + u
	}
	return u
}

func TestEquationsCorruptedNonExtraneous(t *testing.T) {
	const p = 0.4
	tbl, ext, pub := tinyScenario(t, p, 3)
	domain := tbl.Schema.SensitiveDomain()
	uni := privacy.Uniform(domain)

	// Victim: owner 0 (cell [0,1]). Candidates: owner 1 and extraneous 4.
	// Corrupt owner 1 (its true value is 1): alpha = 1, beta = 1,
	// g = (G-1-beta)/(e-alpha) = 0/1 = 0.
	adv := Adversary{Background: uni, Corrupted: map[int]bool{1: true}}
	q, _ := privacy.ExactReconstruction(domain, 0)
	res, err := LinkAttack(pub, ext, 0, adv, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) != 2 || res.Alpha != 1 || res.Beta != 1 {
		t.Fatalf("candidates/alpha/beta = %d/%d/%d, want 2/1/1",
			len(res.Candidates), res.Alpha, res.Beta)
	}
	if res.G != 0 {
		t.Fatalf("g = %v, want 0 (all slots confirmed)", res.G)
	}
	y := res.Y
	u := (1 - p) / float64(domain)
	tg := float64(res.Crucial.G)
	pOwn := (p*uni[y] + u) / tg
	pY := pOwn + transition(1, y, p, domain)/tg // x_1 = owner 1's value = 1
	wantH := pOwn / pY
	if math.Abs(res.H-wantH) > 1e-12 {
		t.Fatalf("h = %v, hand-computed %v", res.H, wantH)
	}
}

func TestEquationsCorruptedExtraneous(t *testing.T) {
	const p = 0.4
	tbl, ext, pub := tinyScenario(t, p, 4)
	domain := tbl.Schema.SensitiveDomain()
	uni := privacy.Uniform(domain)

	// Corrupt only the extraneous individual 4: alpha = 1, beta = 0,
	// g = (2-1-0)/(2-1) = 1. Owner 1 remains an uncorrupted candidate.
	adv := Adversary{Background: uni, Corrupted: map[int]bool{4: true}}
	q, _ := privacy.ExactReconstruction(domain, 0)
	res, err := LinkAttack(pub, ext, 0, adv, q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Alpha != 1 || res.Beta != 0 {
		t.Fatalf("alpha/beta = %d/%d, want 1/0", res.Alpha, res.Beta)
	}
	if res.G != 1 {
		t.Fatalf("g = %v, want 1", res.G)
	}
	y := res.Y
	u := (1 - p) / float64(domain)
	tg := float64(res.Crucial.G)
	pOwn := (p*uni[y] + u) / tg
	// Equation 19 for owner 1 with uniform X_j: (g/tG)(p/|U| + u).
	pY := pOwn + 1/tg*(p/float64(domain)+u)
	wantH := pOwn / pY
	if math.Abs(res.H-wantH) > 1e-12 {
		t.Fatalf("h = %v, hand-computed %v", res.H, wantH)
	}
}

func TestEquationsNoCorruption(t *testing.T) {
	const p = 0.25
	tbl, ext, pub := tinyScenario(t, p, 5)
	domain := tbl.Schema.SensitiveDomain()
	uni := privacy.Uniform(domain)

	// No corruption: alpha = beta = 0, g = (2-1)/2 = 0.5, both candidates
	// weighted by Equation 19.
	adv := Adversary{Background: uni, Corrupted: map[int]bool{}}
	q, _ := privacy.ExactReconstruction(domain, 1)
	res, err := LinkAttack(pub, ext, 0, adv, q)
	if err != nil {
		t.Fatal(err)
	}
	if res.G != 0.5 {
		t.Fatalf("g = %v, want 0.5", res.G)
	}
	y := res.Y
	u := (1 - p) / float64(domain)
	tg := float64(res.Crucial.G)
	pOwn := (p*uni[y] + u) / tg
	pY := pOwn + 2*(0.5/tg)*(p/float64(domain)+u)
	wantH := pOwn / pY
	if math.Abs(res.H-wantH) > 1e-12 {
		t.Fatalf("h = %v, hand-computed %v", res.H, wantH)
	}
	// With a uniform prior, the posterior pdf concentrates on y exactly by
	// Equation 9's mixture; verify the posterior confidence about {y}.
	qy, _ := privacy.ExactReconstruction(domain, y)
	want, err := privacy.PosteriorConfidence(uni, qy, y, p, res.H)
	if err != nil {
		t.Fatal(err)
	}
	resY, err := LinkAttack(pub, ext, 0, adv, qy)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(resY.Posterior-want) > 1e-12 {
		t.Fatalf("posterior = %v, want %v", resY.Posterior, want)
	}
}

// OthersBackground: giving the adversary knowledge about ANOTHER individual
// shifts h. If the adversary believes owner 1's value is very likely y, the
// crucial tuple is more plausibly owner 1's, so h (victim ownership) drops.
func TestOthersBackgroundShiftsH(t *testing.T) {
	const p = 0.4
	tbl, ext, pub := tinyScenario(t, p, 6)
	domain := tbl.Schema.SensitiveDomain()
	uni := privacy.Uniform(domain)
	q, _ := privacy.ExactReconstruction(domain, 0)

	base := Adversary{Background: uni, Corrupted: map[int]bool{}}
	resBase, err := LinkAttack(pub, ext, 0, base, q)
	if err != nil {
		t.Fatal(err)
	}
	y := resBase.Y
	sharp, err := privacy.PointMass(domain, y)
	if err != nil {
		t.Fatal(err)
	}
	informed := Adversary{
		Background: uni,
		Corrupted:  map[int]bool{},
		OthersBackground: func(id int) privacy.PDF {
			if id == 1 {
				return sharp
			}
			return uni
		},
	}
	resInf, err := LinkAttack(pub, ext, 0, informed, q)
	if err != nil {
		t.Fatal(err)
	}
	if !(resInf.H < resBase.H) {
		t.Fatalf("informed h = %v should be below baseline %v", resInf.H, resBase.H)
	}
}

// The g cap: when corrupted knowledge confirms fewer members than the group
// needs but only one uncorrupted candidate remains, g caps at 1.
func TestGCappedAtOne(t *testing.T) {
	// Build a scenario with G = 3 but only 2 candidates after corruption
	// bookkeeping is impossible here (G <= candidates+1 by construction),
	// so instead verify the cap arithmetic through the tiny scenario's
	// no-extraneous variant: 4 owners, no extraneous, corrupt nobody,
	// cell [0,1] has G=2, e=1 candidate, g = (2-1)/1 = 1.
	s := dataset.MustSchema(
		[]*dataset.Attribute{dataset.MustIntAttribute("Q", 0, 3)},
		dataset.MustAttribute("S", "s0", "s1", "s2", "s3"),
	)
	tbl := dataset.NewTable(s)
	for i := int32(0); i < 4; i++ {
		tbl.MustAppend([]int32{i, i})
	}
	ext, err := NewExternal(tbl, [][]int32{{0}, {1}, {2}, {3}})
	if err != nil {
		t.Fatal(err)
	}
	hiers := []*hierarchy.Hierarchy{hierarchy.MustInterval(4, 2)}
	pub, err := pg.Publish(tbl, hiers, pg.Config{K: 2, P: 0.3, Algorithm: pg.KD, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	q, _ := privacy.ExactReconstruction(4, 0)
	res, err := LinkAttack(pub, ext, 0, Adversary{Background: privacy.Uniform(4)}, q)
	if err != nil {
		t.Fatal(err)
	}
	if res.G != 1 {
		t.Fatalf("g = %v, want 1", res.G)
	}
}
