package attack

import (
	"fmt"
	"math/rand"

	"pgpub/internal/dataset"
	"pgpub/internal/hierarchy"
	"pgpub/internal/par"
	"pgpub/internal/pg"
	"pgpub/internal/privacy"
)

// MonteCarloConfig drives the empirical validation of Theorems 2 and 3
// (DESIGN.md Extra E1): republish D* many times with fresh randomness,
// attack a random victim with a random corruption set each trial, and track
// the worst posterior/growth observed against the analytic bounds.
type MonteCarloConfig struct {
	// PG holds the publication parameters (K or S, P, Algorithm).
	PG pg.Config
	// Trials is the number of publish-attack rounds.
	Trials int
	// Lambda bounds the skew of the adversaries drawn (their priors are
	// uniform or Excluding-style, whose skew is kept <= Lambda).
	Lambda float64
	// CorruptFraction is the expected fraction of ℰ−{victim} corrupted per
	// trial; 1 reproduces the worst case |𝒞| = |ℰ|−1.
	CorruptFraction float64
	// Rng drives all randomness; required.
	Rng *rand.Rand
	// Parallel splits the trials across this many goroutines, each with a
	// worker seed derived from Rng. Results are deterministic for a fixed
	// (seed, Parallel) pair; different Parallel values draw different
	// random streams. 0 or 1 runs serially.
	Parallel int
}

// MonteCarloResult aggregates the trials.
type MonteCarloResult struct {
	Trials        int
	MaxH          float64 // worst ownership probability observed
	MaxHBound     float64 // analytic h⊤ (Inequality 20)
	MaxPosterior  float64 // worst posterior confidence with prior <= rho1
	MaxGrowth     float64 // worst posterior - prior
	Rho2Bound     float64 // analytic Theorem-2 bound for rho1 = Lambda-style priors
	DeltaBound    float64 // analytic Theorem-3 bound
	BreachesRho   int     // trials violating the rho bound (must be 0)
	BreachesDelta int     // trials violating the delta bound (must be 0)
}

// MonteCarlo runs the validation. The predicate attacked each trial is
// Q = {y}-containing random sets; since Theorem 1 disposes of y ∉ Q cases,
// the harness always includes the observed y in Q to stress the bound.
func MonteCarlo(d *dataset.Table, voterQI [][]int32, hiers []*hierarchy.Hierarchy, cfg MonteCarloConfig) (*MonteCarloResult, error) {
	if cfg.Trials <= 0 {
		return nil, fmt.Errorf("attack: Trials must be positive")
	}
	if cfg.Rng == nil {
		return nil, fmt.Errorf("attack: Rng is required")
	}
	if cfg.Lambda <= 0 || cfg.Lambda > 1 {
		return nil, fmt.Errorf("attack: Lambda = %v outside (0,1]", cfg.Lambda)
	}
	ext, err := NewExternal(d, voterQI)
	if err != nil {
		return nil, err
	}
	domain := d.Schema.SensitiveDomain()

	// One publication to learn K (resolved from S if needed).
	probe := cfg.PG
	probe.Rng = cfg.Rng
	pub0, err := pg.Publish(d, hiers, probe)
	if err != nil {
		return nil, err
	}
	res := &MonteCarloResult{Trials: cfg.Trials}
	res.MaxHBound = privacy.HTop(pub0.P, cfg.Lambda, pub0.K, domain)
	rho1 := cfg.Lambda // Excluding-style priors below keep prior <= lambda per value set... conservative: use lambda as rho1
	res.Rho2Bound, err = privacy.MinRho2(pub0.P, cfg.Lambda, rho1, pub0.K, domain)
	if err != nil {
		return nil, err
	}
	res.DeltaBound, err = privacy.MinDelta(pub0.P, cfg.Lambda, pub0.K, domain)
	if err != nil {
		return nil, err
	}

	// Microdata owners are the eligible victims.
	var owners []int
	for id := 0; id < ext.Len(); id++ {
		if !ext.IsExtraneous(id) {
			owners = append(owners, id)
		}
	}
	if len(owners) == 0 {
		return nil, fmt.Errorf("attack: no microdata owners in the external database")
	}

	worker := func(trials int, rng *rand.Rand) (maxH, maxGrowth, maxPost float64, brRho, brDelta int, err error) {
		for trial := 0; trial < trials; trial++ {
			pcfg := cfg.PG
			pcfg.Rng = rng
			pub, err := pg.Publish(d, hiers, pcfg)
			if err != nil {
				return 0, 0, 0, 0, 0, err
			}
			victim := owners[rng.Intn(len(owners))]

			adv := Adversary{
				Background: privacy.Uniform(domain),
				Corrupted:  map[int]bool{},
			}
			for id := 0; id < ext.Len(); id++ {
				if id != victim && rng.Float64() < cfg.CorruptFraction {
					adv.Corrupted[id] = true
				}
			}

			// The uniform prior's skew 1/domain is <= Lambda whenever
			// domain >= 1/Lambda; build a skewed prior otherwise by
			// excluding values, capped so the skew stays within Lambda.
			if cfg.Lambda > 1/float64(domain) {
				keep := int(1/cfg.Lambda + 0.999999)
				if keep < 1 {
					keep = 1
				}
				if keep < domain {
					var excluded []int32
					truth := d.Sensitive(ext.RowOf(victim))
					for x := int32(0); len(excluded) < domain-keep && int(x) < domain; x++ {
						if x != truth { // honest background: never exclude the truth
							excluded = append(excluded, x)
						}
					}
					bg, err := privacy.Excluding(domain, excluded...)
					if err != nil {
						return 0, 0, 0, 0, 0, err
					}
					adv.Background = bg
				}
			}

			// Attack with a predicate that contains the observed y.
			t, ok := pub.FindCrucial(ext.QIOf(victim))
			if !ok {
				return 0, 0, 0, 0, 0, fmt.Errorf("attack: trial %d: no crucial tuple", trial)
			}
			values := []int32{t.Value}
			for x := int32(0); int(x) < domain; x++ {
				if x != t.Value && rng.Float64() < 0.2 {
					values = append(values, x)
				}
			}
			q, err := privacy.PredicateOf(domain, values...)
			if err != nil {
				return 0, 0, 0, 0, 0, err
			}

			r, err := LinkAttack(pub, ext, victim, adv, q)
			if err != nil {
				return 0, 0, 0, 0, 0, err
			}
			if r.H > maxH {
				maxH = r.H
			}
			growth := r.Posterior - r.Prior
			if growth > maxGrowth {
				maxGrowth = growth
			}
			if growth > res.DeltaBound+1e-9 {
				brDelta++
			}
			if r.Prior <= rho1+1e-12 {
				if r.Posterior > maxPost {
					maxPost = r.Posterior
				}
				if r.Posterior > res.Rho2Bound+1e-9 {
					brRho++
				}
			}
		}
		return maxH, maxGrowth, maxPost, brRho, brDelta, nil
	}

	workers := cfg.Parallel
	if workers <= 1 {
		maxH, maxGrowth, maxPost, brRho, brDelta, err := worker(cfg.Trials, cfg.Rng)
		if err != nil {
			return nil, err
		}
		res.MaxH, res.MaxGrowth, res.MaxPosterior = maxH, maxGrowth, maxPost
		res.BreachesRho, res.BreachesDelta = brRho, brDelta
		return res, nil
	}
	if workers > cfg.Trials {
		workers = cfg.Trials
	}
	type part struct {
		maxH, maxGrowth, maxPost float64
		brRho, brDelta           int
	}
	// Slot seeds are drawn sequentially before the fan-out, so results stay
	// deterministic for a fixed (Rng state, Parallel) pair.
	parts := make([]part, workers)
	trials := make([]int, workers)
	seeds := make([]int64, workers)
	for w := 0; w < workers; w++ {
		trials[w] = cfg.Trials / workers
		if w < cfg.Trials%workers {
			trials[w]++
		}
		seeds[w] = cfg.Rng.Int63()
	}
	err = par.ForEachErr(workers, workers, func(slot int) error {
		p := &parts[slot]
		var werr error
		p.maxH, p.maxGrowth, p.maxPost, p.brRho, p.brDelta, werr =
			worker(trials[slot], rand.New(rand.NewSource(seeds[slot])))
		return werr
	})
	if err != nil {
		return nil, err
	}
	for _, p := range parts {
		if p.maxH > res.MaxH {
			res.MaxH = p.maxH
		}
		if p.maxGrowth > res.MaxGrowth {
			res.MaxGrowth = p.maxGrowth
		}
		if p.maxPost > res.MaxPosterior {
			res.MaxPosterior = p.maxPost
		}
		res.BreachesRho += p.brRho
		res.BreachesDelta += p.brDelta
	}
	return res, nil
}
