package attack

import (
	"math"
	"math/rand"
	"testing"

	"pgpub/internal/dataset"
	"pgpub/internal/generalize"
	"pgpub/internal/hierarchy"
	"pgpub/internal/pg"
	"pgpub/internal/privacy"
)

func hospitalHiers(s *dataset.Schema) []*hierarchy.Hierarchy {
	return []*hierarchy.Hierarchy{
		hierarchy.MustInterval(s.QI[0].Size(), 5, 20),
		hierarchy.MustFlat(s.QI[1].Size()),
		hierarchy.MustInterval(s.QI[2].Size(), 5, 20),
	}
}

func hospitalExternal(t *testing.T) (*dataset.Table, *External) {
	t.Helper()
	d := dataset.Hospital()
	ext, err := NewExternal(d, dataset.HospitalVoterQI())
	if err != nil {
		t.Fatalf("NewExternal: %v", err)
	}
	return d, ext
}

func TestNewExternal(t *testing.T) {
	_, ext := hospitalExternal(t)
	if ext.Len() != 9 {
		t.Fatalf("|E| = %d, want 9", ext.Len())
	}
	// Emily (4) is extraneous with sensitive ∅.
	if !ext.IsExtraneous(4) {
		t.Fatal("Emily must be extraneous")
	}
	if _, ok := ext.SensitiveOf(4); ok {
		t.Fatal("extraneous individuals have no sensitive value")
	}
	if ext.RowOf(4) != -1 {
		t.Fatal("extraneous RowOf must be -1")
	}
	// Bob (0) owns row 0 with bronchitis.
	v, ok := ext.SensitiveOf(0)
	if !ok || ext.Table().Schema.Sensitive.Label(v) != "bronchitis" {
		t.Fatal("Bob's corruption oracle wrong")
	}
}

func TestNewExternalErrors(t *testing.T) {
	d := dataset.Hospital()
	voters := dataset.HospitalVoterQI()
	// Owner outside the list.
	bad := d.Clone()
	bad.Owners[0] = 99
	if _, err := NewExternal(bad, voters); err == nil {
		t.Fatal("owner outside voter list: want error")
	}
	// Owner owning two rows.
	bad = d.Clone()
	bad.Owners[1] = bad.Owners[0]
	if _, err := NewExternal(bad, voters); err == nil {
		t.Fatal("duplicate owner: want error")
	}
	// Inconsistent QI between voter list and microdata.
	badVoters := make([][]int32, len(voters))
	copy(badVoters, voters)
	badVoters[0] = append([]int32(nil), voters[0]...)
	badVoters[0][0]++
	if _, err := NewExternal(d, badVoters); err == nil {
		t.Fatal("QI mismatch: want error")
	}
	// Wrong arity.
	badVoters[0] = []int32{1}
	if _, err := NewExternal(d, badVoters); err == nil {
		t.Fatal("QI arity mismatch: want error")
	}
}

// publishHospital publishes the hospital microdata with fixed parameters.
func publishHospital(t *testing.T, seed int64, p float64, k int) *pg.Published {
	t.Helper()
	d := dataset.Hospital()
	pub, err := pg.Publish(d, hospitalHiers(d.Schema), pg.Config{K: k, P: p, Seed: seed})
	if err != nil {
		t.Fatalf("Publish: %v", err)
	}
	return pub
}

func TestLinkAttackExample1Shape(t *testing.T) {
	// Example 1 of the paper: attack Ellie (ID 3) with corrupted
	// {Debbie (2), Emily (4)}, Q = "a respiratory disease".
	d, ext := hospitalExternal(t)
	pub := publishHospital(t, 42, 0.25, 2)
	domain := d.Schema.SensitiveDomain()
	sens := d.Schema.Sensitive
	q, err := privacy.PredicateOf(domain,
		sens.MustCode("bronchitis"), sens.MustCode("pneumonia"),
		sens.MustCode("SARS"), sens.MustCode("tuberculosis"))
	if err != nil {
		t.Fatal(err)
	}
	adv := Adversary{
		Background: privacy.Uniform(domain),
		Corrupted:  map[int]bool{2: true, 4: true},
	}
	res, err := LinkAttack(pub, ext, 3, adv, q)
	if err != nil {
		t.Fatalf("LinkAttack: %v", err)
	}
	// h respects the analytic bound with lambda = uniform skew.
	bound := privacy.HTop(pub.P, 1/float64(domain), pub.K, domain)
	if res.H > bound+1e-9 {
		t.Fatalf("h = %v exceeds h-top = %v", res.H, bound)
	}
	// Theorem 1: when the observed y does not satisfy Q, no growth at all.
	if !q.Holds(res.Y) && res.Posterior > res.Prior+1e-12 {
		t.Fatalf("y ∉ Q but posterior %v > prior %v", res.Posterior, res.Prior)
	}
	// The posterior pdf is a valid distribution.
	if err := res.PosteriorPDF.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLinkAttackCandidates(t *testing.T) {
	// Debbie (2), Ellie (3) and Emily (4) share the generalized block
	// [40-59]/F/[15-34] under 20-wide bands; attacking Ellie should find
	// candidates Debbie and Emily whenever the recoding keeps them together.
	d, ext := hospitalExternal(t)
	pub := publishHospital(t, 7, 0.25, 2)
	adv := Adversary{Background: privacy.Uniform(d.Schema.SensitiveDomain()), Corrupted: map[int]bool{}}
	q, _ := privacy.ExactReconstruction(d.Schema.SensitiveDomain(), d.Sensitive(ext.RowOf(3)))
	res, err := LinkAttack(pub, ext, 3, adv, q)
	if err != nil {
		t.Fatalf("LinkAttack: %v", err)
	}
	// e+1 >= t.G (the paper's remark after A2).
	if len(res.Candidates)+1 < res.Crucial.G {
		t.Fatalf("e+1 = %d < t.G = %d", len(res.Candidates)+1, res.Crucial.G)
	}
	for _, id := range res.Candidates {
		if id == 3 {
			t.Fatal("victim listed as candidate")
		}
		if !res.Crucial.Box.Covers(ext.QIOf(id)) {
			t.Fatalf("candidate %d not generalized by the crucial tuple", id)
		}
	}
}

func TestLinkAttackValidation(t *testing.T) {
	d, ext := hospitalExternal(t)
	pub := publishHospital(t, 1, 0.25, 2)
	domain := d.Schema.SensitiveDomain()
	uni := privacy.Uniform(domain)
	q, _ := privacy.ExactReconstruction(domain, 0)

	if _, err := LinkAttack(pub, ext, -1, Adversary{Background: uni}, q); err == nil {
		t.Fatal("victim out of range: want error")
	}
	if _, err := LinkAttack(pub, ext, 4, Adversary{Background: uni}, q); err == nil {
		t.Fatal("extraneous victim: want error")
	}
	if _, err := LinkAttack(pub, ext, 3, Adversary{Background: uni, Corrupted: map[int]bool{3: true}}, q); err == nil {
		t.Fatal("corrupted victim: want error")
	}
	if _, err := LinkAttack(pub, ext, 3, Adversary{Background: privacy.PDF{0.5, 0.4}}, q); err == nil {
		t.Fatal("invalid background: want error")
	}
	if _, err := LinkAttack(pub, ext, 3, Adversary{Background: privacy.Uniform(3)}, q); err == nil {
		t.Fatal("background domain mismatch: want error")
	}
	short, _ := privacy.ExactReconstruction(3, 0)
	if _, err := LinkAttack(pub, ext, 3, Adversary{Background: uni}, short); err == nil {
		t.Fatal("predicate domain mismatch: want error")
	}
	bad := Adversary{Background: uni, OthersBackground: func(int) privacy.PDF { return privacy.Uniform(2) }}
	if _, err := LinkAttack(pub, ext, 3, bad, q); err == nil {
		t.Fatal("others-background mismatch: want error")
	}
}

// The h bound of Inequality 20 must hold across random corruption sets,
// priors, seeds and parameters — the core soundness property of Section VI.
func TestHBoundHolds(t *testing.T) {
	d, ext := hospitalExternal(t)
	domain := d.Schema.SensitiveDomain()
	rng := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 300; trial++ {
		p := float64(rng.Intn(90)) / 100
		k := 1 + rng.Intn(4)
		pub, err := pg.Publish(d, hospitalHiers(d.Schema),
			pg.Config{K: k, P: p, Rng: rng})
		if err != nil {
			t.Fatalf("Publish: %v", err)
		}
		victim := []int{0, 1, 2, 3, 5, 6, 7, 8}[rng.Intn(8)]
		adv := Adversary{Background: privacy.Uniform(domain), Corrupted: map[int]bool{}}
		for id := 0; id < ext.Len(); id++ {
			if id != victim && rng.Float64() < 0.5 {
				adv.Corrupted[id] = true
			}
		}
		q, _ := privacy.ExactReconstruction(domain, int32(rng.Intn(domain)))
		res, err := LinkAttack(pub, ext, victim, adv, q)
		if err != nil {
			t.Fatalf("LinkAttack: %v", err)
		}
		bound := privacy.HTop(p, 1/float64(domain), k, domain)
		if res.H > bound+1e-9 {
			t.Fatalf("trial %d: h = %v > h-top = %v (p=%v k=%d)", trial, res.H, bound, p, k)
		}
	}
}

// Worst case of Definition 1's range: |C| = |E|-1. Even then the posterior
// growth respects Theorem 3 — the headline claim of the paper.
func TestWorstCaseCorruption(t *testing.T) {
	d, ext := hospitalExternal(t)
	domain := d.Schema.SensitiveDomain()
	rng := rand.New(rand.NewSource(99))
	const p, k, lambda = 0.3, 2, 0.1
	deltaBound, err := privacy.MinDelta(p, lambda, k, domain)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 200; trial++ {
		pub, err := pg.Publish(d, hospitalHiers(d.Schema), pg.Config{K: k, P: p, Rng: rng})
		if err != nil {
			t.Fatal(err)
		}
		victim := []int{0, 1, 2, 3, 5, 6, 7, 8}[rng.Intn(8)]
		adv := Adversary{Background: privacy.Uniform(domain), Corrupted: map[int]bool{}}
		for id := 0; id < ext.Len(); id++ {
			if id != victim {
				adv.Corrupted[id] = true
			}
		}
		// Predicate containing the observed y (Theorem 1 covers the rest).
		crt, ok := pub.FindCrucial(ext.QIOf(victim))
		if !ok {
			t.Fatal("no crucial tuple")
		}
		q, _ := privacy.ExactReconstruction(domain, crt.Value)
		res, err := LinkAttack(pub, ext, victim, adv, q)
		if err != nil {
			t.Fatal(err)
		}
		if growth := res.Posterior - res.Prior; growth > deltaBound+1e-9 {
			t.Fatalf("trial %d: growth %v exceeds Theorem-3 bound %v", trial, growth, deltaBound)
		}
	}
}

func TestLemma1Figure1(t *testing.T) {
	// Reconstruct the Figure 1 scenario over a 100-value disease domain:
	// 5 respiratory diseases and HIV appear in the victim's QI-group.
	labels := make([]string, 100)
	labels[0], labels[1], labels[2], labels[3], labels[4] = "pneumonia", "bronchitis", "lung-cancer", "SARS", "tuberculosis"
	labels[5] = "HIV"
	for i := 6; i < 100; i++ {
		labels[i] = "other" + string(rune('A'+i%26)) + string(rune('0'+i/26))
	}
	s := dataset.MustSchema(
		[]*dataset.Attribute{dataset.MustIntAttribute("QI", 0, 0)},
		dataset.MustAttribute("Disease", labels...),
	)
	tbl := dataset.NewTable(s)
	for _, d := range []string{
		"pneumonia", "pneumonia", "pneumonia", "HIV", "HIV",
		"bronchitis", "bronchitis", "lung-cancer", "lung-cancer",
		"SARS", "tuberculosis",
	} {
		if err := tbl.AppendLabels("0", d); err != nil {
			t.Fatal(err)
		}
	}
	hiers := []*hierarchy.Hierarchy{hierarchy.MustFlat(1)}
	rec, err := generalize.TopRecoding(tbl.Schema, hiers)
	if err != nil {
		t.Fatal(err)
	}
	conv, err := PublishConventional(tbl, rec)
	if err != nil {
		t.Fatal(err)
	}
	// Adversary knows o1 (row 0) does not have HIV: prior 1/99 per value.
	prior, err := privacy.Excluding(100, s.Sensitive.MustCode("HIV"))
	if err != nil {
		t.Fatal(err)
	}
	// Q_r: exact reconstruction of pneumonia -> posterior 1/3 (paper).
	qr, _ := privacy.ExactReconstruction(100, s.Sensitive.MustCode("pneumonia"))
	pr, post, err := conv.PredicateAttack(0, prior, qr)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pr-1.0/99) > 1e-12 {
		t.Fatalf("prior = %v, want 1/99", pr)
	}
	if math.Abs(post-1.0/3) > 1e-12 {
		t.Fatalf("posterior = %v, want 1/3", post)
	}
	// Q: "a respiratory disease" -> prior 5/99, posterior 1 (Lemma 1).
	q, _ := privacy.PredicateOf(100, 0, 1, 2, 3, 4)
	pr, post, err = conv.PredicateAttack(0, prior, q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pr-5.0/99) > 1e-12 {
		t.Fatalf("prior = %v, want 5/99", pr)
	}
	if post != 1 {
		t.Fatalf("posterior = %v, want 1 (Lemma 1)", post)
	}
}

func TestLemma2TotalCorruption(t *testing.T) {
	// Conventional 2-anonymous generalization of the hospital table: with
	// C = E - {victim}, the adversary reconstructs the victim's disease.
	d, ext := hospitalExternal(t)
	hiers := hospitalHiers(d.Schema)
	rec, err := generalize.TopRecoding(d.Schema, hiers)
	if err != nil {
		t.Fatal(err)
	}
	conv, err := PublishConventional(d, rec)
	if err != nil {
		t.Fatal(err)
	}
	for _, victim := range []int{0, 1, 2, 3, 5, 6, 7, 8} {
		got, err := conv.TotalCorruptionAttack(ext, victim)
		if err != nil {
			t.Fatalf("victim %d: %v", victim, err)
		}
		want := d.Sensitive(ext.RowOf(victim))
		if got != want {
			t.Fatalf("victim %d: reconstructed %d, want %d", victim, got, want)
		}
	}
	// Extraneous victims are rejected.
	if _, err := conv.TotalCorruptionAttack(ext, 4); err == nil {
		t.Fatal("extraneous victim: want error")
	}
}

func TestMonteCarloValidation(t *testing.T) {
	d := dataset.Hospital()
	res, err := MonteCarlo(d, dataset.HospitalVoterQI(), hospitalHiers(d.Schema), MonteCarloConfig{
		PG:              pg.Config{K: 2, P: 0.3},
		Trials:          150,
		Lambda:          0.1,
		CorruptFraction: 0.6,
		Rng:             rand.New(rand.NewSource(5)),
	})
	if err != nil {
		t.Fatalf("MonteCarlo: %v", err)
	}
	if res.BreachesRho != 0 || res.BreachesDelta != 0 {
		t.Fatalf("breaches observed: rho=%d delta=%d", res.BreachesRho, res.BreachesDelta)
	}
	if res.MaxH > res.MaxHBound+1e-9 {
		t.Fatalf("MaxH %v exceeds bound %v", res.MaxH, res.MaxHBound)
	}
	if res.MaxGrowth > res.DeltaBound+1e-9 {
		t.Fatalf("MaxGrowth %v exceeds Theorem-3 bound %v", res.MaxGrowth, res.DeltaBound)
	}
}

func TestMonteCarloValidationWorstCase(t *testing.T) {
	d := dataset.Hospital()
	res, err := MonteCarlo(d, dataset.HospitalVoterQI(), hospitalHiers(d.Schema), MonteCarloConfig{
		PG:              pg.Config{S: 0.5, P: 0.25},
		Trials:          100,
		Lambda:          0.2,
		CorruptFraction: 1, // |C| = |E| - 1
		Rng:             rand.New(rand.NewSource(6)),
	})
	if err != nil {
		t.Fatalf("MonteCarlo: %v", err)
	}
	if res.BreachesRho != 0 || res.BreachesDelta != 0 {
		t.Fatalf("worst-case breaches: rho=%d delta=%d", res.BreachesRho, res.BreachesDelta)
	}
}

func TestMonteCarloErrors(t *testing.T) {
	d := dataset.Hospital()
	hiers := hospitalHiers(d.Schema)
	voters := dataset.HospitalVoterQI()
	rng := rand.New(rand.NewSource(1))
	if _, err := MonteCarlo(d, voters, hiers, MonteCarloConfig{PG: pg.Config{K: 2, P: 0.3}, Trials: 0, Lambda: 0.1, Rng: rng}); err == nil {
		t.Fatal("zero trials: want error")
	}
	if _, err := MonteCarlo(d, voters, hiers, MonteCarloConfig{PG: pg.Config{K: 2, P: 0.3}, Trials: 1, Lambda: 0.1}); err == nil {
		t.Fatal("nil rng: want error")
	}
	if _, err := MonteCarlo(d, voters, hiers, MonteCarloConfig{PG: pg.Config{K: 2, P: 0.3}, Trials: 1, Lambda: 0, Rng: rng}); err == nil {
		t.Fatal("lambda 0: want error")
	}
}

func TestMonteCarloParallel(t *testing.T) {
	d := dataset.Hospital()
	res, err := MonteCarlo(d, dataset.HospitalVoterQI(), hospitalHiers(d.Schema), MonteCarloConfig{
		PG:              pg.Config{K: 2, P: 0.3},
		Trials:          120,
		Lambda:          0.1,
		CorruptFraction: 0.8,
		Rng:             rand.New(rand.NewSource(77)),
		Parallel:        4,
	})
	if err != nil {
		t.Fatalf("parallel MonteCarlo: %v", err)
	}
	if res.BreachesRho != 0 || res.BreachesDelta != 0 {
		t.Fatalf("breaches: rho=%d delta=%d", res.BreachesRho, res.BreachesDelta)
	}
	if res.MaxH > res.MaxHBound+1e-9 {
		t.Fatalf("MaxH %v above bound %v", res.MaxH, res.MaxHBound)
	}
	// Determinism for a fixed (seed, Parallel) pair.
	res2, err := MonteCarlo(d, dataset.HospitalVoterQI(), hospitalHiers(d.Schema), MonteCarloConfig{
		PG:              pg.Config{K: 2, P: 0.3},
		Trials:          120,
		Lambda:          0.1,
		CorruptFraction: 0.8,
		Rng:             rand.New(rand.NewSource(77)),
		Parallel:        4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxH != res2.MaxH || res.MaxGrowth != res2.MaxGrowth {
		t.Fatal("parallel MonteCarlo not deterministic for fixed seed")
	}
	// More workers than trials clamps cleanly.
	if _, err := MonteCarlo(d, dataset.HospitalVoterQI(), hospitalHiers(d.Schema), MonteCarloConfig{
		PG: pg.Config{K: 2, P: 0.3}, Trials: 3, Lambda: 0.1,
		Rng: rand.New(rand.NewSource(78)), Parallel: 16,
	}); err != nil {
		t.Fatal(err)
	}
}
