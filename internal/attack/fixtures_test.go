package attack

import (
	"math"
	"testing"

	"pgpub/internal/dataset"
	"pgpub/internal/generalize"
	"pgpub/internal/hierarchy"
	"pgpub/internal/pg"
	"pgpub/internal/privacy"
)

// This file pins Equations 5–20 against hand-computed literal fixtures, on
// publications small enough to evaluate the paper's formulas on paper:
//
//   - Lemma 1 / Equations 5–10 on a conventional generalized publication
//     (PredicateAttack) and Lemma 2 (TotalCorruptionAttack);
//   - Equations 11–20 through LinkAttack on the tiny one-attribute scenario,
//     published by all three Phase-2 algorithms — KD, TDS and full-domain all
//     arrive at the same minimal cut {[0,1],[2,3]} here, so a single fixture
//     table pins all three;
//   - the boundary cases: retention p = 0 (Phase 1 destroys all information,
//     the posterior must collapse to the prior) and corruption β = k−1
//     (every group-mate corrupted, g = 0 — the worst case of Theorem 2).
//
// Every expected value below is a hand-derived closed form, not a recorded
// program output; the derivations are in the comments.

const fixTol = 1e-12

// conventionalFixture publishes the 4-row table QI = {0,1,2,3}, sensitive
// multiset {s0,s0,s1,s2} over a 5-value sensitive domain, generalized under
// the given hierarchy cut.
func conventionalFixture(t *testing.T, cutNodes []int32) (*Conventional, *External) {
	t.Helper()
	s := dataset.MustSchema(
		[]*dataset.Attribute{dataset.MustIntAttribute("Q", 0, 3)},
		dataset.MustAttribute("S", "s0", "s1", "s2", "s3", "s4"),
	)
	tbl := dataset.NewTable(s)
	sens := []int32{0, 0, 1, 2}
	for i := int32(0); i < 4; i++ {
		tbl.MustAppend([]int32{i, sens[i]})
	}
	h := hierarchy.MustInterval(4, 2)
	cut, err := hierarchy.NewCut(h, cutNodes)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := generalize.NewRecoding(s, []*hierarchy.Hierarchy{h}, []*hierarchy.Cut{cut})
	if err != nil {
		t.Fatal(err)
	}
	conv, err := PublishConventional(tbl, rec)
	if err != nil {
		t.Fatal(err)
	}
	ext, err := NewExternal(tbl, [][]int32{{0}, {1}, {2}, {3}})
	if err != nil {
		t.Fatal(err)
	}
	return conv, ext
}

// TestLemma1PredicateFixtures pins the predicate attack of Section III-A
// (Equations 5–10 specialized to a conventional publication) against literal
// posteriors on the group multiset {s0, s0, s1, s2}:
// post[x] = mult(x)·prior[x] / Σ_x' mult(x')·prior[x'].
func TestLemma1PredicateFixtures(t *testing.T) {
	// Top cut: one group holding all four tuples.
	conv, _ := conventionalFixture(t, []int32{6})
	uni := privacy.Uniform(5)
	exc, err := privacy.Excluding(5, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	pm1, _ := privacy.PointMass(5, 1)
	pm3, _ := privacy.PointMass(5, 3)

	cases := []struct {
		name         string
		prior        privacy.PDF
		q            []int32
		prior_, post float64
	}{
		// Uniform prior: post ∝ multiplicity: {s0: 2/4, s1: 1/4, s2: 1/4}.
		{"uniform point", uni, []int32{0}, 1.0 / 5, 2.0 / 4},
		{"uniform pair", uni, []int32{0, 1}, 2.0 / 5, 3.0 / 4},
		{"uniform absent value", uni, []int32{3}, 1.0 / 5, 0},
		// Excluding prior 1/3 on {s0,s1,s2}: post ∝ {2/3, 1/3, 1/3},
		// normalizer 4/3 → {1/2, 1/4, 1/4}.
		{"excluding point", exc, []int32{0}, 1.0 / 3, 1.0 / 2},
		{"excluding other", exc, []int32{1}, 1.0 / 3, 1.0 / 4},
		// Point-mass prior on a group value: only the s1 tuple survives.
		{"point mass consistent", pm1, []int32{1}, 1, 1},
		// Point-mass prior contradicting every group value: mass 0, the
		// publication is inconsistent with the knowledge, prior kept.
		{"point mass contradiction", pm3, []int32{3}, 1, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			q, err := privacy.PredicateOf(5, tc.q...)
			if err != nil {
				t.Fatal(err)
			}
			prior, post, err := conv.PredicateAttack(0, tc.prior, q)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(prior-tc.prior_) > fixTol || math.Abs(post-tc.post) > fixTol {
				t.Fatalf("prior/post = %v/%v, hand-computed %v/%v", prior, post, tc.prior_, tc.post)
			}
		})
	}

	// Pair cut {[0,1],[2,3]}: victim 0's group multiset is {s0,s0} — the
	// homogeneity breach of Lemma 1: posterior 1 from any prior with
	// prior[0] > 0.
	convPair, _ := conventionalFixture(t, []int32{4, 5})
	q0, _ := privacy.PredicateOf(5, 0)
	prior, post, err := convPair.PredicateAttack(0, uni, q0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(prior-1.0/5) > fixTol || math.Abs(post-1) > fixTol {
		t.Fatalf("homogeneous group: prior/post = %v/%v, want 0.2/1", prior, post)
	}
}

// TestLemma2ReconstructionFixtures pins the constructive proof of Lemma 2:
// with 𝒞 = ℰ − {o} the multiset subtraction leaves exactly the victim's
// value, for every victim, under both cuts — including victim 0 whose value
// s0 is duplicated in its group.
func TestLemma2ReconstructionFixtures(t *testing.T) {
	for _, cut := range [][]int32{{6}, {4, 5}} {
		conv, ext := conventionalFixture(t, cut)
		for victim, want := range []int32{0, 0, 1, 2} {
			got, err := conv.TotalCorruptionAttack(ext, victim)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("cut %v victim %d: reconstructed %d, truth %d", cut, victim, got, want)
			}
		}
	}
}

// linkFixture is one hand-derived LinkAttack expectation on the tiny
// scenario: victim owner 0 (true value 0), crucial cell [0,1] with G = 2 and
// candidates 𝒪 = {owner 1 (value 1), extraneous 4}, target Q = {0}.
type linkFixture struct {
	name        string
	prior       privacy.PDF
	corrupted   map[int]bool
	alpha, beta int
	g, h        float64
	prior_      float64
	post        float64
}

// TestLinkAttackFixturesAllAlgorithms pins Equations 11–20 (transition,
// conditional, g, h, posterior mixture and confidences) against literal
// values, for each Phase-2 algorithm. On this scenario KD, TDS and
// full-domain all produce the cut {[0,1],[2,3]}, and Phases 1/3 draw from
// seed streams independent of the algorithm, so the published snapshot — and
// every fixture value — is identical across the three.
func TestLinkAttackFixturesAllAlgorithms(t *testing.T) {
	uni := privacy.Uniform(4)
	exc3, err := privacy.Excluding(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	pm0, _ := privacy.PointMass(4, 0)

	// Retention p = 1/2, seed 11: the published crucial value is y = 1
	// (owner 1's tuple sampled, value retained). u = (1−p)/4 = 1/8,
	// p·(1/4)+u = 1/4 for any uniform pdf, T(x→1) = 5/8 if x = 1 else 1/8.
	half := []linkFixture{
		// g = (G−1−β)/(e−α) = 1/2; pOwn = (1/4)/2 = 1/8; each uncorrupted
		// candidate adds (g/G)(1/4) = 1/16; pY = 1/4; h = 1/2.
		// Posterior: den = p/4+u = 1/4, cond[0] = (1/4)(1/8)/(1/4) = 1/8,
		// post[0] = h/8 + (1−h)/4 = 3/16.
		{"uniform no corruption", uni, nil, 0, 0, 0.5, 0.5, 0.25, 3.0 / 16},
		// β = k−1 = 1: corrupt owner 1, g = 0. Its known value x₁ = 1 = y
		// adds T(1→1)/G = (5/8)/2; pY = 1/8 + 5/16 = 7/16; h = 2/7.
		// post[0] = (2/7)(1/8) + (5/7)(1/4) = 3/14.
		{"uniform beta k-1", uni, map[int]bool{1: true}, 1, 1, 0, 2.0 / 7, 0.25, 3.0 / 14},
		// Corrupt the extraneous candidate: α = 1, β = 0, g = 1/1 = 1; the
		// single uncorrupted candidate adds (1/2)(1/4) = 1/8; pY = 1/4,
		// h = 1/2 and the posterior matches the no-corruption case.
		{"extraneous corrupted", uni, map[int]bool{4: true}, 1, 0, 1, 0.5, 0.25, 3.0 / 16},
		// Excluding prior (1/3 on {0,1,2}): pOwn = (1/6+1/8)/2 = 7/48,
		// candidates add 2·(1/4)(1/4) = 6/48; h = 7/13. den = 1/6+1/8 =
		// 7/24, cond[0] = (1/24)/(7/24) = 1/7, post[0] = (7/13)(1/7) +
		// (6/13)(1/3) = 3/13.
		{"excluding prior", exc3, nil, 0, 0, 0.5, 7.0 / 13, 1.0 / 3, 3.0 / 13},
		// Point-mass prior at the truth: pOwn = (0+1/8)/2 = 1/16, pY =
		// 1/16+1/8 = 3/16, h = 1/3; cond[0] = T(0→1)/(den=1/8) = 1 and the
		// posterior mixture keeps certainty: post[0] = 1.
		{"point mass certainty", pm0, nil, 0, 0, 0.5, 1.0 / 3, 1, 1},
	}

	// Boundary p = 0, seed 11: y = 3, u = 1/4, every transition is 1/4 —
	// the observation carries no information, so h is still well-defined
	// (1/2 in all three cases below) but the posterior must equal the prior
	// exactly, even when y = 3 is prior-impossible as a true value.
	zero := []linkFixture{
		{"p=0 uniform", uni, nil, 0, 0, 0.5, 0.5, 0.25, 0.25},
		{"p=0 beta k-1", uni, map[int]bool{1: true}, 1, 1, 0, 0.5, 0.25, 0.25},
		{"p=0 excluding", exc3, nil, 0, 0, 0.5, 0.5, 1.0 / 3, 1.0 / 3},
	}

	for _, alg := range []pg.Algorithm{pg.KD, pg.TDS, pg.FullDomain} {
		t.Run(alg.String(), func(t *testing.T) {
			for _, bc := range []struct {
				p     float64
				y     int32
				cases []linkFixture
			}{{0.5, 1, half}, {0, 3, zero}} {
				tbl, ext, pub := tinyScenarioAlg(t, bc.p, 11, alg)
				domain := tbl.Schema.SensitiveDomain()
				for _, tc := range bc.cases {
					t.Run(tc.name, func(t *testing.T) {
						q, _ := privacy.ExactReconstruction(domain, 0)
						adv := Adversary{Background: tc.prior, Corrupted: tc.corrupted}
						res, err := LinkAttack(pub, ext, 0, adv, q)
						if err != nil {
							t.Fatal(err)
						}
						if res.Y != bc.y || res.Crucial.G != 2 || len(res.Candidates) != 2 {
							t.Fatalf("y/G/e = %d/%d/%d, fixture assumes %d/2/2",
								res.Y, res.Crucial.G, len(res.Candidates), bc.y)
						}
						if res.Alpha != tc.alpha || res.Beta != tc.beta {
							t.Fatalf("alpha/beta = %d/%d, want %d/%d", res.Alpha, res.Beta, tc.alpha, tc.beta)
						}
						for _, v := range []struct {
							name      string
							got, want float64
						}{
							{"g", res.G, tc.g},
							{"h", res.H, tc.h},
							{"prior", res.Prior, tc.prior_},
							{"posterior", res.Posterior, tc.post},
						} {
							if math.Abs(v.got-v.want) > fixTol {
								t.Fatalf("%s = %v, hand-computed %v", v.name, v.got, v.want)
							}
						}
						if bc.p == 0 {
							// Equation 9 at p = 0: the full pdf collapses to
							// the prior, elementwise.
							for x, px := range res.PosteriorPDF {
								if math.Abs(px-tc.prior[x]) > fixTol {
									t.Fatalf("p=0 posterior[%d] = %v, prior %v", x, px, tc.prior[x])
								}
							}
						}
					})
				}
			}
		})
	}
}

// tinyScenarioAlg is tinyScenario under a caller-chosen Phase-2 algorithm.
func tinyScenarioAlg(t *testing.T, p float64, seed int64, alg pg.Algorithm) (*dataset.Table, *External, *pg.Published) {
	t.Helper()
	s := dataset.MustSchema(
		[]*dataset.Attribute{dataset.MustIntAttribute("Q", 0, 3)},
		dataset.MustAttribute("S", "s0", "s1", "s2", "s3"),
	)
	tbl := dataset.NewTable(s)
	for i := int32(0); i < 4; i++ {
		tbl.MustAppend([]int32{i, i})
	}
	ext, err := NewExternal(tbl, [][]int32{{0}, {1}, {2}, {3}, {1}})
	if err != nil {
		t.Fatal(err)
	}
	hiers := []*hierarchy.Hierarchy{hierarchy.MustInterval(4, 2)}
	pub, err := pg.Publish(tbl, hiers, pg.Config{K: 2, P: p, Algorithm: alg, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	if pub.Len() != 2 {
		t.Fatalf("expected the cut {[0,1],[2,3]}, got %d cells", pub.Len())
	}
	return tbl, ext, pub
}
