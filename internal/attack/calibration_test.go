package attack

import (
	"math"
	"math/rand"
	"testing"

	"pgpub/internal/dataset"
	"pgpub/internal/hierarchy"
	"pgpub/internal/pg"
	"pgpub/internal/privacy"
)

// These tests validate the attack equations *as probabilities*, not just as
// bounds: when the adversary's model matches the generative process (uniform
// sensitive values, uniform stratified sampling, known perturbation), the
// ownership probability h of Equation 14 and the posterior of Equation 9
// must be calibrated — among trials where the adversary computes value q,
// the event must occur with frequency ≈ q.

// calibScenario draws a fresh 4-owner microdata with uniform sensitive
// values over a 4-value domain, publishes it, and attacks owner 0.
func calibScenario(rng *rand.Rand, p float64) (truth int32, res *Result, ownerOfCrucial int, err error) {
	s := dataset.MustSchema(
		[]*dataset.Attribute{dataset.MustIntAttribute("Q", 0, 3)},
		dataset.MustAttribute("S", "s0", "s1", "s2", "s3"),
	)
	tbl := dataset.NewTable(s)
	for i := int32(0); i < 4; i++ {
		tbl.MustAppend([]int32{i, int32(rng.Intn(4))})
	}
	ext, err := NewExternal(tbl, [][]int32{{0}, {1}, {2}, {3}})
	if err != nil {
		return 0, nil, 0, err
	}
	hiers := []*hierarchy.Hierarchy{hierarchy.MustInterval(4, 2)}
	pub, err := pg.Publish(tbl, hiers, pg.Config{K: 2, P: p, Algorithm: pg.KD, Rng: rng})
	if err != nil {
		return 0, nil, 0, err
	}
	adv := Adversary{Background: privacy.Uniform(4), Corrupted: map[int]bool{}}
	q, err := privacy.PredicateOf(4, 0, 2) // a fixed 2-value predicate
	if err != nil {
		return 0, nil, 0, err
	}
	res, err = LinkAttack(pub, ext, 0, adv, q)
	if err != nil {
		return 0, nil, 0, err
	}
	crucial, ok := pub.FindCrucial(ext.QIOf(0))
	if !ok {
		return 0, nil, 0, err
	}
	return tbl.Sensitive(0), res, tbl.Owner(crucial.SourceRow), nil
}

// Equation 14's h must match the empirical frequency of "the victim owns
// the crucial tuple" — binned over the h values the adversary computes.
func TestHCalibration(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	const trials = 20000
	const bins = 10
	sumH := make([]float64, bins)
	hits := make([]int, bins)
	counts := make([]int, bins)
	for trial := 0; trial < trials; trial++ {
		_, res, owner, err := calibScenario(rng, 0.4)
		if err != nil {
			t.Fatal(err)
		}
		b := int(res.H * bins)
		if b >= bins {
			b = bins - 1
		}
		sumH[b] += res.H
		counts[b]++
		if owner == 0 {
			hits[b]++
		}
	}
	worst := 0.0
	for b := 0; b < bins; b++ {
		if counts[b] < 300 {
			continue // too few samples for a stable frequency
		}
		pred := sumH[b] / float64(counts[b])
		freq := float64(hits[b]) / float64(counts[b])
		if diff := math.Abs(pred - freq); diff > worst {
			worst = diff
		}
	}
	if worst > 0.04 {
		t.Fatalf("h is miscalibrated: worst bin deviation %v", worst)
	}
}

// Equation 9's posterior confidence about Q must match the empirical
// frequency of Q holding for the victim's true value.
func TestPosteriorCalibration(t *testing.T) {
	rng := rand.New(rand.NewSource(2025))
	const trials = 20000
	const bins = 10
	sumP := make([]float64, bins)
	hits := make([]int, bins)
	counts := make([]int, bins)
	for trial := 0; trial < trials; trial++ {
		truth, res, _, err := calibScenario(rng, 0.4)
		if err != nil {
			t.Fatal(err)
		}
		b := int(res.Posterior * bins)
		if b >= bins {
			b = bins - 1
		}
		sumP[b] += res.Posterior
		counts[b]++
		if truth == 0 || truth == 2 { // Q = {s0, s2}
			hits[b]++
		}
	}
	worst := 0.0
	for b := 0; b < bins; b++ {
		if counts[b] < 300 {
			continue
		}
		pred := sumP[b] / float64(counts[b])
		freq := float64(hits[b]) / float64(counts[b])
		if diff := math.Abs(pred - freq); diff > worst {
			worst = diff
		}
	}
	if worst > 0.04 {
		t.Fatalf("posterior is miscalibrated: worst bin deviation %v", worst)
	}
}
