package attack

import (
	"fmt"

	"pgpub/internal/dataset"
	"pgpub/internal/generalize"
	"pgpub/internal/privacy"
)

// This file implements the attacks of Section III against *conventional*
// generalization (publish every tuple, exact sensitive values): the
// predicate attack of Lemma 1 and the total-corruption attack of Lemma 2.
// They demonstrate why generalization alone cannot provide background-
// sensitive guarantees, motivating PG.

// Conventional is a classic generalized publication D^g with s = 1: every
// microdata tuple appears, QI generalized, sensitive value exact.
type Conventional struct {
	Table    *dataset.Table
	Recoding *generalize.Recoding
	Groups   *generalize.Groups
}

// PublishConventional groups the table under the recoding and returns the
// conventional publication.
func PublishConventional(d *dataset.Table, rec *generalize.Recoding) (*Conventional, error) {
	if d.Len() == 0 {
		return nil, fmt.Errorf("attack: empty table")
	}
	return &Conventional{Table: d, Recoding: rec, Groups: generalize.GroupBy(d, rec)}, nil
}

// groupOf locates the QI-group containing the victim's row.
func (c *Conventional) groupOf(row int) (int, error) {
	for gi, rows := range c.Groups.Rows {
		for _, i := range rows {
			if i == row {
				return gi, nil
			}
		}
	}
	return 0, fmt.Errorf("attack: row %d not in any group", row)
}

// PredicateAttack is the adversary analysis of Section III-A (the machinery
// behind Lemma 1): the adversary knows the victim's QI vector, holds a prior
// pdf over U^s, sees the victim's QI-group with its exact sensitive values,
// and computes the posterior by weighting each group value's multiplicity by
// the prior. It returns the prior and posterior confidence about Q.
//
// With an Excluding prior (l-2 values ruled out) on the Figure 1 group this
// reproduces the paper's numbers: posterior 1/3 for Q = "pneumonia", and
// posterior 1 for Q = "a respiratory disease".
func (c *Conventional) PredicateAttack(victimRow int, prior privacy.PDF, q privacy.Predicate) (priorConf, postConf float64, err error) {
	domain := c.Table.Schema.SensitiveDomain()
	if len(prior) != domain || len(q) != domain {
		return 0, 0, fmt.Errorf("attack: prior/predicate length mismatch with domain %d", domain)
	}
	if err := prior.Validate(); err != nil {
		return 0, 0, err
	}
	gi, err := c.groupOf(victimRow)
	if err != nil {
		return 0, 0, err
	}
	priorConf, err = prior.Confidence(q)
	if err != nil {
		return 0, 0, err
	}
	// Posterior: the victim is one of the group's tuples; tuples carrying a
	// prior-impossible value are excluded; among the rest the victim is
	// uniform (the adversary cannot distinguish tuples within a group).
	post := make(privacy.PDF, domain)
	mass := 0.0
	for _, i := range c.Groups.Rows[gi] {
		x := c.Table.Sensitive(i)
		post[x] += prior[x]
		mass += prior[x]
	}
	if mass == 0 {
		// Every group value contradicts the prior; the publication is
		// inconsistent with the adversary's knowledge. Keep the prior.
		copy(post, prior)
	} else {
		for x := range post {
			post[x] /= mass
		}
	}
	postConf, err = post.Confidence(q)
	return priorConf, postConf, err
}

// TotalCorruptionAttack is the constructive proof of Lemma 2: with
// 𝒞 = ℰ − {o}, the adversary knows the sensitive value of every microdata
// owner except the victim. Because a conventional publication contains every
// exact sensitive value, subtracting the known values of the victim's
// group-mates from the group's value multiset leaves exactly the victim's
// value. The function returns that reconstructed value; the adversary's
// posterior confidence about any Q containing it is 1 regardless of prior.
func (c *Conventional) TotalCorruptionAttack(ext *External, victim int) (int32, error) {
	if victim < 0 || victim >= ext.Len() || ext.IsExtraneous(victim) {
		return 0, fmt.Errorf("attack: victim %d is not a microdata owner", victim)
	}
	row := ext.RowOf(victim)
	gi, err := c.groupOf(row)
	if err != nil {
		return 0, err
	}
	// Multiset of the group's sensitive values.
	counts := make(map[int32]int)
	for _, i := range c.Groups.Rows[gi] {
		counts[c.Table.Sensitive(i)]++
	}
	// Remove the known value of every other group member (identified
	// through ℰ by QI-join, exactly like step A2).
	for _, i := range c.Groups.Rows[gi] {
		if i == row {
			continue
		}
		v, ok := ext.SensitiveOf(c.Table.Owner(i))
		if !ok {
			return 0, fmt.Errorf("attack: group member %d has no corruptible value", i)
		}
		counts[v]--
	}
	for v, n := range counts {
		if n > 0 {
			return v, nil
		}
	}
	return 0, fmt.Errorf("attack: inconsistent corruption data")
}
