package snapshot

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"pgpub/internal/pg"
)

func testChain() *ChainMetadata {
	return &ChainMetadata{
		Release:       2,
		ParentCRC:     0xDEADBEEF,
		Inserts:       7,
		Deletes:       3,
		SourceRows:    1204,
		OddsRatio:     1.75,
		ComposedDelta: 0.42,
	}
}

// TestChainRoundTrip pins the release-chain block codec: a chained snapshot
// round-trips the ChainMetadata exactly through both the streaming reader
// and the mapped opener, and a chainless one loads Chain as nil on both.
func TestChainRoundTrip(t *testing.T) {
	pub := publishHospital(t, pg.KD)
	for _, chain := range []*ChainMetadata{nil, testChain()} {
		path := filepath.Join(t.TempDir(), "r.pgsnap")
		if err := SaveRelease(path, pub, nil, chain); err != nil {
			t.Fatalf("SaveRelease: %v", err)
		}
		_, _, got, err := LoadRelease(path)
		if err != nil {
			t.Fatalf("LoadRelease: %v", err)
		}
		if !reflect.DeepEqual(got, chain) {
			t.Fatalf("LoadRelease chain = %+v, want %+v", got, chain)
		}
		m, err := OpenMapped(path)
		if err != nil {
			t.Fatalf("OpenMapped: %v", err)
		}
		if !reflect.DeepEqual(m.Chain, chain) {
			t.Fatalf("OpenMapped chain = %+v, want %+v", m.Chain, chain)
		}
		if err := m.Verify(); err != nil {
			t.Fatalf("Verify: %v", err)
		}
		m.Close()
	}
}

// TestChainV2ReadCompat pins version-2 read compatibility: a body with no
// chain block under a version-2 header loads with Chain nil via both
// readers, and Load/Read keep working unchanged.
func TestChainV2ReadCompat(t *testing.T) {
	pub := publishHospital(t, pg.TDS)
	var buf bytes.Buffer
	if err := Write(&buf, pub, nil); err != nil {
		t.Fatalf("Write: %v", err)
	}
	data := buf.Bytes()

	// Rewrite the v3 file as v2: drop the one-byte absent-chain flag from
	// the metadata body and restamp the header (version, length, CRC). The
	// chain flag sits right after the guarantee flag; locate it by decoding
	// the prefix like the reader does.
	d := &dec{b: data[headerLen : headerLen+int(binary.LittleEndian.Uint64(data[8:16]))]}
	if _, err := decodePubMeta(d); err != nil {
		t.Fatalf("decodePubMeta: %v", err)
	}
	if _, err := decodeGuarantee(d); err != nil {
		t.Fatalf("decodeGuarantee: %v", err)
	}
	metaEnd := headerLen + int(binary.LittleEndian.Uint64(data[8:16]))
	cut := headerLen + d.off // offset of the chain presence flag
	meta := append([]byte{}, data[headerLen:cut]...)
	meta = append(meta, data[cut+1:metaEnd]...)

	// The directory records absolute file offsets, so the page-aligned
	// blocks must not move: pad the one removed byte back as part of the
	// zero gap between the metadata and the first block.
	v2 := append([]byte{}, makeHeader(versionV2, meta)...)
	v2 = append(v2, meta...)
	v2 = append(v2, 0)
	v2 = append(v2, data[metaEnd:]...)

	pub2, _, chain, err := ReadRelease(bytes.NewReader(v2))
	if err != nil {
		t.Fatalf("ReadRelease(v2): %v", err)
	}
	if chain != nil {
		t.Fatalf("v2 snapshot decoded chain %+v, want nil", chain)
	}
	if pub2.Len() != pub.Len() {
		t.Fatalf("v2 snapshot decoded %d rows, want %d", pub2.Len(), pub.Len())
	}

	path := filepath.Join(t.TempDir(), "v2.pgsnap")
	if err := os.WriteFile(path, v2, 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := OpenMapped(path)
	if err != nil {
		t.Fatalf("OpenMapped(v2): %v", err)
	}
	defer m.Close()
	if m.Chain != nil {
		t.Fatalf("OpenMapped(v2) chain = %+v, want nil", m.Chain)
	}
}

// TestChainRejectsBadBlocks exercises the decoder's validation: corrupt
// presence flags, impossible release numbers, a parented release 0, and
// out-of-range bounds must all be refused.
func TestChainRejectsBadBlocks(t *testing.T) {
	cases := []struct {
		name string
		mut  func(c *ChainMetadata)
		want string
	}{
		{"parented release 0", func(c *ChainMetadata) { c.Release = 0 }, "release 0"},
		{"odds ratio below 1", func(c *ChainMetadata) { c.OddsRatio = 0.5 }, "odds-ratio"},
		{"composed bound above 1", func(c *ChainMetadata) { c.ComposedDelta = 1.5 }, "composed"},
	}
	for _, tc := range cases {
		c := testChain()
		tc.mut(c)
		e := &enc{}
		// Encode leniently (bypassing encodeChain's own checks) the way a
		// corrupted or hostile file would.
		e.u8(1)
		e.u32(uint32(c.Release))
		e.u32(c.ParentCRC)
		e.u64(uint64(c.Inserts))
		e.u64(uint64(c.Deletes))
		e.u64(uint64(c.SourceRows))
		e.f64(c.OddsRatio)
		e.f64(c.ComposedDelta)
		if _, err := decodeChain(&dec{b: e.b}); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: decodeChain err = %v, want %q", tc.name, err, tc.want)
		}
	}
	if _, err := decodeChain(&dec{b: []byte{9}}); err == nil || !strings.Contains(err.Error(), "presence flag") {
		t.Errorf("bad presence flag: decodeChain err = %v", err)
	}
	if _, err := decodeChain(&dec{b: []byte{1, 2, 3}}); err == nil {
		t.Error("truncated chain block: decodeChain accepted it")
	}
	bad := testChain()
	bad.Release = -1
	if err := encodeChain(&enc{}, bad); err == nil {
		t.Error("encodeChain accepted a negative release")
	}
}

// TestHeaderCRC pins the release identity: HeaderCRC equals the header's
// recorded body checksum and changes when any column payload changes
// (because the directory CRCs live in the body).
func TestHeaderCRC(t *testing.T) {
	pub := publishHospital(t, pg.FullDomain)
	dir := t.TempDir()
	path := filepath.Join(dir, "r.pgsnap")
	if err := Save(path, pub, nil); err != nil {
		t.Fatalf("Save: %v", err)
	}
	crc, err := HeaderCRC(path)
	if err != nil {
		t.Fatalf("HeaderCRC: %v", err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, pub, nil); err != nil {
		t.Fatal(err)
	}
	want := binary.LittleEndian.Uint32(buf.Bytes()[16:20])
	if crc != want {
		t.Fatalf("HeaderCRC = %08x, header records %08x", crc, want)
	}

	other := publishHospital(t, pg.KD)
	path2 := filepath.Join(dir, "other.pgsnap")
	if err := Save(path2, other, nil); err != nil {
		t.Fatal(err)
	}
	crc2, err := HeaderCRC(path2)
	if err != nil {
		t.Fatal(err)
	}
	if crc2 == crc {
		t.Fatalf("different publications share header CRC %08x", crc)
	}
}
