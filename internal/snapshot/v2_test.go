package snapshot

import (
	"bytes"
	"math/rand"
	"os"
	"reflect"
	"strings"
	"testing"

	"pgpub/internal/pg"
	"pgpub/internal/query"
	"pgpub/internal/sal"
)

// TestV1ReadCompat pins backward compatibility: a version-1 file (written by
// the retained legacy writer, standing in for archived snapshots) must load
// into the same publication the current writer round-trips, and re-saving it
// must produce a byte-identical version-2 file.
func TestV1ReadCompat(t *testing.T) {
	for _, alg := range []pg.Algorithm{pg.KD, pg.TDS, pg.FullDomain} {
		pub := publishHospital(t, alg)
		g := &pg.GuaranteeMetadata{Lambda: 0.1, Rho1: 0.2, Rho2: 0.4, Delta: 0.2}

		var v1 bytes.Buffer
		if err := writeV1(&v1, pub, g); err != nil {
			t.Fatalf("%v: writeV1: %v", alg, err)
		}
		got, gotG, err := Read(bytes.NewReader(v1.Bytes()))
		if err != nil {
			t.Fatalf("%v: Read(v1): %v", alg, err)
		}
		if !reflect.DeepEqual(got.EnsureRows(), pub.Rows) {
			t.Fatalf("%v: v1 rows drifted", alg)
		}
		if !reflect.DeepEqual(gotG, g) {
			t.Fatalf("%v: v1 guarantee drifted: %+v", alg, gotG)
		}

		// Re-saving the v1-loaded publication and the original must agree.
		var fromV1, fromOrig bytes.Buffer
		if err := Write(&fromV1, got, gotG); err != nil {
			t.Fatalf("%v: Write(v1-loaded): %v", alg, err)
		}
		if err := Write(&fromOrig, pub, g); err != nil {
			t.Fatalf("%v: Write(original): %v", alg, err)
		}
		if !bytes.Equal(fromV1.Bytes(), fromOrig.Bytes()) {
			t.Fatalf("%v: v2 bytes differ between the v1-loaded and original publication", alg)
		}
	}
}

// TestV1RejectsCorruptionAndTruncation keeps the exhaustive rejection sweeps
// on the legacy format too, since Read still accepts it.
func TestV1RejectsCorruptionAndTruncation(t *testing.T) {
	var buf bytes.Buffer
	if err := writeV1(&buf, tinyPublication(t), nil); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for i := range data {
		data[i] ^= 0x5a
		_, _, err := Read(bytes.NewReader(data))
		data[i] ^= 0x5a
		if err == nil {
			t.Fatalf("byte %d of %d: corruption accepted", i, len(data))
		}
	}
	for n := 0; n < len(data); n++ {
		if _, _, err := Read(bytes.NewReader(data[:n])); err == nil {
			t.Fatalf("truncation to %d of %d bytes accepted", n, len(data))
		}
	}
}

// workload generates a deterministic query mix for index-equivalence checks.
func workload(t *testing.T, pub *pg.Published, n int) []query.CountQuery {
	t.Helper()
	qs, err := query.Workload(pub.Schema, query.WorkloadConfig{
		Queries:           n,
		QIFraction:        0.5,
		SensitiveFraction: 0.4,
		Rng:               rand.New(rand.NewSource(99)),
	})
	if err != nil {
		t.Fatal(err)
	}
	return qs
}

// TestOpenMapped is the mmap serving path's core property: opening a saved
// snapshot in place yields the same publication (rows, metadata, guarantee)
// and an index whose answers are bit-identical to one built from scratch —
// without parsing the file.
func TestOpenMapped(t *testing.T) {
	for _, alg := range []pg.Algorithm{pg.KD, pg.TDS, pg.FullDomain} {
		pub := publishHospital(t, alg)
		g := &pg.GuaranteeMetadata{Lambda: 0.1, Rho1: 0.2, Rho2: 0.4, Delta: 0.2}
		path := t.TempDir() + "/pub.pgsnap"
		if err := Save(path, pub, g); err != nil {
			t.Fatalf("%v: Save: %v", alg, err)
		}

		m, err := OpenMapped(path)
		if err != nil {
			t.Fatalf("%v: OpenMapped: %v", alg, err)
		}
		if err := m.Verify(); err != nil {
			t.Fatalf("%v: Verify: %v", alg, err)
		}
		if !reflect.DeepEqual(m.Guarantee, g) {
			t.Fatalf("%v: mapped guarantee drifted: %+v", alg, m.Guarantee)
		}
		if m.Pub.Algorithm != pub.Algorithm || m.Pub.P != pub.P || m.Pub.K != pub.K {
			t.Fatalf("%v: mapped parameters drifted", alg)
		}

		// The mapped columns must reproduce the published bytes exactly.
		var origCSV, mappedCSV strings.Builder
		if err := pub.WriteCSV(&origCSV); err != nil {
			t.Fatal(err)
		}
		if err := m.Pub.WriteCSV(&mappedCSV); err != nil {
			t.Fatal(err)
		}
		if origCSV.String() != mappedCSV.String() {
			t.Fatalf("%v: WriteCSV differs through the mapping", alg)
		}

		// Index answers must be bit-identical to a freshly built index.
		fresh, err := query.NewIndex(pub)
		if err != nil {
			t.Fatal(err)
		}
		for qi, q := range workload(t, pub, 50) {
			want, err1 := fresh.Count(q)
			got, err2 := m.Index.Count(q)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("%v: query %d error drift: %v vs %v", alg, qi, err1, err2)
			}
			if want != got {
				t.Fatalf("%v: query %d: mapped index answered %v, fresh %v", alg, qi, got, want)
			}
		}
		if err := m.Close(); err != nil {
			t.Fatalf("%v: Close: %v", alg, err)
		}
		if err := m.Close(); err != nil { // idempotent
			t.Fatalf("%v: second Close: %v", alg, err)
		}
	}
}

// TestOpenMappedRejectsV1 pins the error for the unmappable legacy format.
func TestOpenMappedRejectsV1(t *testing.T) {
	pub := tinyPublication(t)
	path := t.TempDir() + "/v1.pgsnap"
	var buf bytes.Buffer
	if err := writeV1(&buf, pub, nil); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenMapped(path); err == nil || !strings.Contains(err.Error(), "use Load") {
		t.Fatalf("v1 mapping not rejected with a pointer to Load: %v", err)
	}
}

// TestMappedVerifyCatchesEveryByte flips every byte of a v2 image and
// requires open+Verify (the full-integrity entry sequence) to reject each
// mutant — the open alone is allowed to accept payload damage, that being
// the documented trade for not faulting the file in.
func TestMappedVerifyCatchesEveryByte(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, tinyPublication(t), nil); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for i := range data {
		data[i] ^= 0x5a
		m, err := newMapped(data, false, nil)
		if err == nil {
			err = m.Verify()
		}
		data[i] ^= 0x5a
		if err == nil {
			t.Fatalf("byte %d of %d: corruption accepted through open+Verify", i, len(data))
		}
	}

	// Truncation and extension are rejected at open: a mapped file must end
	// exactly at the last block.
	for _, n := range []int{0, 1, headerLen - 1, headerLen, len(data) / 2, len(data) - 1} {
		if _, err := newMapped(data[:n], false, nil); err == nil {
			t.Fatalf("truncation to %d of %d bytes accepted at open", n, len(data))
		}
	}
	if _, err := newMapped(append(append([]byte(nil), data...), 0), false, nil); err == nil {
		t.Fatal("trailing byte accepted at open")
	}
}

// TestWriteWorkerInvariant closes the determinism chain at the artifact
// level: publishing the same microdata sequentially and on eight workers
// must yield byte-identical v2 snapshot files — columns, directory, padding
// and all — so a snapshot's checksum identifies the release regardless of
// the machine that produced it.
func TestWriteWorkerInvariant(t *testing.T) {
	d, err := sal.Generate(9000, 61)
	if err != nil {
		t.Fatal(err)
	}
	hiers := sal.Hierarchies(d.Schema)
	g := &pg.GuaranteeMetadata{Lambda: 0.1, Rho1: 0.2, Rho2: 0.4, Delta: 0.2}
	for _, alg := range []pg.Algorithm{pg.KD, pg.TDS, pg.FullDomain} {
		var base []byte
		for _, workers := range []int{1, 8} {
			pub, err := pg.Publish(d, hiers, pg.Config{
				K: 6, P: 0.3, Seed: 23, Algorithm: alg, Workers: workers,
			})
			if err != nil {
				t.Fatalf("%v workers=%d: %v", alg, workers, err)
			}
			var buf bytes.Buffer
			if err := Write(&buf, pub, g); err != nil {
				t.Fatalf("%v workers=%d: Write: %v", alg, workers, err)
			}
			if workers == 1 {
				base = buf.Bytes()
				continue
			}
			if !bytes.Equal(base, buf.Bytes()) {
				t.Fatalf("%v: snapshot bytes differ between workers=1 and workers=%d", alg, workers)
			}
		}
	}
}
