package snapshot

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"pgpub/internal/dataset"
	"pgpub/internal/hierarchy"
	"pgpub/internal/pg"
	"pgpub/internal/sal"
)

func hospitalHiers(s *dataset.Schema) []*hierarchy.Hierarchy {
	return []*hierarchy.Hierarchy{
		hierarchy.MustInterval(s.QI[0].Size(), 5, 20),
		hierarchy.MustFlat(s.QI[1].Size()),
		hierarchy.MustInterval(s.QI[2].Size(), 5, 20),
	}
}

// publishHospital produces one publication per Phase-2 algorithm over the
// paper's hospital microdata.
func publishHospital(t *testing.T, alg pg.Algorithm) *pg.Published {
	t.Helper()
	d := dataset.Hospital()
	pub, err := pg.Publish(d, hospitalHiers(d.Schema), pg.Config{
		K: 2, P: 0.25, Algorithm: alg, Seed: 7,
	})
	if err != nil {
		t.Fatalf("%v: Publish: %v", alg, err)
	}
	return pub
}

// TestRoundTripAllAlgorithms is the codec's core property: for every Phase-2
// algorithm, load(save(pub)) reproduces the publication exactly — same
// WriteCSV bytes, same Metadata, same rows, same recoding — and re-saving
// the loaded publication reproduces the file bytes.
func TestRoundTripAllAlgorithms(t *testing.T) {
	for _, alg := range []pg.Algorithm{pg.KD, pg.TDS, pg.FullDomain} {
		pub := publishHospital(t, alg)
		meta, err := pub.Metadata(0.1, 0.2)
		if err != nil {
			t.Fatalf("%v: Metadata: %v", alg, err)
		}

		var buf bytes.Buffer
		if err := Write(&buf, pub, meta.Guarantee); err != nil {
			t.Fatalf("%v: Write: %v", alg, err)
		}
		got, gotG, err := Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%v: Read: %v", alg, err)
		}

		// Scalar parameters and rows.
		if got.Algorithm != pub.Algorithm || got.P != pub.P || got.K != pub.K {
			t.Fatalf("%v: parameters drifted: %v/%v p=%v/%v k=%d/%d",
				alg, got.Algorithm, pub.Algorithm, got.P, pub.P, got.K, pub.K)
		}
		if !reflect.DeepEqual(got.EnsureRows(), pub.Rows) {
			t.Fatalf("%v: rows drifted across the round trip", alg)
		}

		// WriteCSV output must be byte-identical.
		var origCSV, loadedCSV strings.Builder
		if err := pub.WriteCSV(&origCSV); err != nil {
			t.Fatal(err)
		}
		if err := got.WriteCSV(&loadedCSV); err != nil {
			t.Fatal(err)
		}
		if origCSV.String() != loadedCSV.String() {
			t.Fatalf("%v: WriteCSV differs after the round trip", alg)
		}

		// Metadata (including the guarantee block) must be reproducible from
		// the loaded publication alone.
		gotMeta, err := got.Metadata(0.1, 0.2)
		if err != nil {
			t.Fatalf("%v: Metadata on loaded publication: %v", alg, err)
		}
		if !reflect.DeepEqual(gotMeta, meta) {
			t.Fatalf("%v: metadata drifted: %+v vs %+v", alg, gotMeta, meta)
		}
		if !reflect.DeepEqual(gotG, meta.Guarantee) {
			t.Fatalf("%v: stored guarantee block drifted: %+v vs %+v", alg, gotG, meta.Guarantee)
		}

		// Recoding: present exactly for the cut-based algorithms, and
		// structurally identical.
		if (pub.Recoding == nil) != (got.Recoding == nil) {
			t.Fatalf("%v: recoding presence drifted", alg)
		}
		if pub.Recoding != nil {
			for j := range pub.Recoding.Hierarchies {
				if !reflect.DeepEqual(pub.Recoding.Hierarchies[j].Parents(), got.Recoding.Hierarchies[j].Parents()) {
					t.Fatalf("%v: hierarchy %d drifted", alg, j)
				}
				if !reflect.DeepEqual(pub.Recoding.Cuts[j].Nodes(), got.Recoding.Cuts[j].Nodes()) {
					t.Fatalf("%v: cut %d drifted", alg, j)
				}
			}
		}

		// The encoding is deterministic: re-saving the loaded publication
		// reproduces the original file bytes.
		var again bytes.Buffer
		if err := Write(&again, got, gotG); err != nil {
			t.Fatalf("%v: re-Write: %v", alg, err)
		}
		if !bytes.Equal(buf.Bytes(), again.Bytes()) {
			t.Fatalf("%v: save(load(save(pub))) is not byte-identical", alg)
		}
	}
}

// TestRoundTripSAL exercises the codec on the full 8-attribute SAL schema
// (large label spaces, KD boxes) and a certified guarantee block.
func TestRoundTripSAL(t *testing.T) {
	d, err := sal.Generate(600, 11)
	if err != nil {
		t.Fatal(err)
	}
	pub, err := pg.Publish(d, sal.Hierarchies(d.Schema), pg.Config{K: 6, P: 0.3, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, pub, &pg.GuaranteeMetadata{Lambda: 0.1, Rho1: 0.2, Rho2: 0.45, Delta: 0.24}); err != nil {
		t.Fatal(err)
	}
	got, g, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if g == nil || g.Rho2 != 0.45 {
		t.Fatalf("guarantee block drifted: %+v", g)
	}
	if !reflect.DeepEqual(got.EnsureRows(), pub.Rows) {
		t.Fatal("rows drifted across the round trip")
	}
	for j, a := range pub.Schema.QI {
		b := got.Schema.QI[j]
		if a.Name != b.Name || a.Kind != b.Kind || !reflect.DeepEqual(a.Values, b.Values) {
			t.Fatalf("QI attribute %d drifted", j)
		}
	}
	if pub.Schema.Sensitive.Name != got.Schema.Sensitive.Name ||
		pub.Schema.Sensitive.Kind != got.Schema.Sensitive.Kind {
		t.Fatal("sensitive attribute drifted")
	}
}

// TestSaveLoadFile round-trips through the file API.
func TestSaveLoadFile(t *testing.T) {
	pub := publishHospital(t, pg.TDS)
	path := t.TempDir() + "/pub.pgsnap"
	if err := Save(path, pub, nil); err != nil {
		t.Fatal(err)
	}
	got, g, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if g != nil {
		t.Fatal("unexpected guarantee block")
	}
	if !reflect.DeepEqual(got.EnsureRows(), pub.Rows) {
		t.Fatal("rows drifted through the file round trip")
	}
}

// tinyPublication builds the smallest structurally complete publication —
// recoding present, grids present, several rows — so the exhaustive
// every-byte and every-prefix sweeps stay fast: even a minimal v2 file is 21
// page-aligned blocks (~90 KiB), and the sweeps are quadratic in file size.
// The hospital publications cover the same paths at realistic scale in the
// round-trip tests.
func tinyPublication(t *testing.T) *pg.Published {
	t.Helper()
	q0, err := dataset.NewIntAttribute("q0", 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	q1, err := dataset.NewIntAttribute("q1", 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	sens, err := dataset.NewIntAttribute("s", 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	schema, err := dataset.NewSchema([]*dataset.Attribute{q0, q1}, sens)
	if err != nil {
		t.Fatal(err)
	}
	tab := dataset.NewTable(schema)
	for i := 0; i < 12; i++ {
		if err := tab.Append([]int32{int32(i % 4), int32(i % 3), int32(i % 3)}); err != nil {
			t.Fatal(err)
		}
	}
	hiers := []*hierarchy.Hierarchy{
		hierarchy.MustInterval(4, 2, 4),
		hierarchy.MustFlat(3),
	}
	pub, err := pg.Publish(tab, hiers, pg.Config{K: 2, P: 0.25, Algorithm: pg.TDS, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return pub
}

// TestRejectsCorruption flips every single byte of a valid snapshot in turn
// and requires Read to reject each mutant: header damage is caught by the
// magic/version/length checks, metadata damage by its CRC-32C, block damage
// by the per-block CRCs, padding damage by the zero check.
func TestRejectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, tinyPublication(t), &pg.GuaranteeMetadata{Lambda: 0.1, Rho1: 0.2, Rho2: 0.4, Delta: 0.2}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for i := range data {
		data[i] ^= 0x5a
		_, _, err := Read(bytes.NewReader(data))
		data[i] ^= 0x5a
		if err == nil {
			t.Fatalf("byte %d of %d: corruption accepted", i, len(data))
		}
	}
}

// TestRejectsTruncation cuts the file at every possible length short of the
// full one and requires a loud error each time.
func TestRejectsTruncation(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, tinyPublication(t), nil); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for n := 0; n < len(data); n++ {
		if _, _, err := Read(bytes.NewReader(data[:n])); err == nil {
			t.Fatalf("truncation to %d of %d bytes accepted", n, len(data))
		}
	}
}

// TestRejectsTrailingGarbage: bytes appended after the body must not change
// the decoded result — Read consumes exactly the advertised body, so the
// reader can be layered over concatenated streams; but a *length field* that
// overstates the body is rejected.
func TestRejectsTrailingGarbage(t *testing.T) {
	pub := publishHospital(t, pg.KD)
	var buf bytes.Buffer
	if err := Write(&buf, pub, nil); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	// Overstate the body length: the checksum is now computed over garbage.
	mut := append([]byte(nil), data...)
	mut[8]++ // low byte of the body length
	mut = append(mut, 0xee)
	if _, _, err := Read(bytes.NewReader(mut)); err == nil {
		t.Fatal("overstated body length accepted")
	}

	// A clean read from a stream with trailing data still succeeds and
	// leaves the trailer unread.
	r := bytes.NewReader(append(append([]byte(nil), data...), 0xde, 0xad))
	if _, _, err := Read(r); err != nil {
		t.Fatalf("read with trailing stream data failed: %v", err)
	}
	if r.Len() != 2 {
		t.Fatalf("reader consumed %d trailing bytes", 2-r.Len())
	}
}

// TestRejectsOversizedBodyClaim pins the allocation guard: a header claiming
// a multi-gigabyte body is rejected before any allocation happens.
func TestRejectsOversizedBodyClaim(t *testing.T) {
	pub := publishHospital(t, pg.KD)
	var buf bytes.Buffer
	if err := Write(&buf, pub, nil); err != nil {
		t.Fatal(err)
	}
	data := append([]byte(nil), buf.Bytes()...)
	for i := 8; i < 16; i++ {
		data[i] = 0xff
	}
	if _, _, err := Read(bytes.NewReader(data)); err == nil || !strings.Contains(err.Error(), "limit") {
		t.Fatalf("oversized body claim not rejected by the limit guard: %v", err)
	}
}
