// Package snapshot is the publication persistence layer: a versioned,
// checksummed binary codec that serializes a complete pg.Published — schema,
// Phase-2 recoding (hierarchies and cuts), generalized boxes, observed
// sensitive values, retention and sampling parameters, and the certified
// guarantee metadata — into one self-contained file, and loads it back
// byte-identically.
//
// The point of the format is the publish-then-serve split: `pgpublish
// -snapshot out.pgsnap` runs the three-phase pipeline once, and every
// downstream tool (pgserve, pgquery, pgattack) reopens the result in
// milliseconds instead of re-running minutes of anonymization — or instead of
// round-tripping through the release CSV, which drops the algorithm tag, the
// exact K, and the recoding.
//
// # File format
//
// Every version opens with the same fixed 20-byte header:
//
//	offset  size  field
//	0       6     magic "PGSNAP"
//	6       2     format version, little-endian uint16 (writer emits 3)
//	8       8     body length in bytes, little-endian uint64
//	16      4     CRC-32C (Castagnoli) of the body, little-endian uint32
//	20      len   body
//
// Version 1 (read compatibility only) stores everything — schema, pipeline
// parameters, optional recoding, rows, optional guarantee metadata — in the
// single flat little-endian body the header describes: fixed-width integers,
// IEEE-754 bit patterns for float64, length-prefixed UTF-8 strings.
//
// Versions 2 and 3 split the file in two: the header's body is just the
// *metadata* (schema, parameters, recoding, guarantee, row count, index
// root, and a block directory), and the rows plus a prebuilt query-serving
// index follow as page-aligned, length-prefixed, individually-CRC'd column
// blocks — one contiguous array per logical field. The layout lives in
// v2.go; the field-level spec is docs/SERVING.md. Page alignment is what
// makes the mmap serving path (OpenMapped) possible: a cold start maps the
// file and adopts the arrays in place, paying page faults instead of a
// parse.
//
// Version 3 (what Write emits) is version 2 plus one metadata field: an
// optional release-chain block (ChainMetadata) between the guarantee block
// and the row count, recording the snapshot's position in a re-publication
// chain. The field-level spec is docs/REPUBLICATION.md.
//
// Either way the encoding is deterministic — the same publication always
// produces the same bytes — so snapshots can be content-addressed and
// diffed, and Read rejects anything it cannot vouch for: a short or
// oversized header, an unknown version, a body shorter or longer than the
// header promises (truncation), any checksum mismatch (corruption), nonzero
// padding or trailing garbage, and any decoded structure the validators of
// dataset, hierarchy, generalize, or pg refuse.
package snapshot

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"pgpub/internal/dataset"
	"pgpub/internal/generalize"
	"pgpub/internal/hierarchy"
	"pgpub/internal/pg"
)

// Version is the current snapshot format version (what Write emits).
const Version = 3

// versionV1 is the legacy flat-body format, still accepted by Read.
const versionV1 = 1

// versionV2 is the first columnar format, identical to version 3 except
// that its metadata body has no release-chain block. Read and OpenMapped
// still accept it (Chain loads as nil).
const versionV2 = 2

// magic identifies a snapshot file; it never changes across versions.
var magic = [6]byte{'P', 'G', 'S', 'N', 'A', 'P'}

const headerLen = 6 + 2 + 8 + 4

// maxBodyLen caps the body a reader will buffer (1 GiB), so a corrupted
// length field cannot ask Read to allocate the advertised 2^64 bytes.
const maxBodyLen = 1 << 30

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Write serializes the publication and its optional guarantee metadata to w
// in the current (version 3) format: metadata body, then the rows and a
// prebuilt query-serving index as page-aligned column blocks. The guarantee
// block is what pg.Metadata carries beyond the publication itself; pass nil
// when no level was certified. The release-chain block is written absent;
// use WriteRelease to stamp one.
func Write(w io.Writer, pub *pg.Published, g *pg.GuaranteeMetadata) error {
	return WriteRelease(w, pub, g, nil)
}

// WriteRelease is Write with a release-chain block: the snapshot records its
// position in a re-publication chain (release number, parent CRC, delta
// summary, cross-release guarantee accounting). A nil chain is valid and
// equals Write.
func WriteRelease(w io.Writer, pub *pg.Published, g *pg.GuaranteeMetadata, chain *ChainMetadata) error {
	if pub == nil || pub.Schema == nil {
		return fmt.Errorf("snapshot: nil publication or schema")
	}
	return writeV2(w, pub, g, chain)
}

// writeV1 emits the legacy single-body format. It exists so the v1 read
// compatibility path stays testable without archived fixture files.
func writeV1(w io.Writer, pub *pg.Published, g *pg.GuaranteeMetadata) error {
	if pub == nil || pub.Schema == nil {
		return fmt.Errorf("snapshot: nil publication or schema")
	}
	body, err := encodeBody(pub, g)
	if err != nil {
		return err
	}
	if _, err := w.Write(makeHeader(versionV1, body)); err != nil {
		return fmt.Errorf("snapshot: writing header: %w", err)
	}
	if _, err := w.Write(body); err != nil {
		return fmt.Errorf("snapshot: writing body: %w", err)
	}
	return nil
}

// makeHeader builds the 20-byte header for a body of the given version.
func makeHeader(version uint16, body []byte) []byte {
	hdr := make([]byte, headerLen)
	copy(hdr[:6], magic[:])
	binary.LittleEndian.PutUint16(hdr[6:8], version)
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(len(body)))
	binary.LittleEndian.PutUint32(hdr[16:20], crc32.Checksum(body, castagnoli))
	return hdr
}

// Read loads a snapshot written by Write (either format version), verifying
// the magic, version, body length and every checksum before decoding, and
// re-validating every structure it reconstructs. The returned guarantee
// metadata is nil when the snapshot carries none.
//
// A version-2 publication is returned in columnar form (pg.FromColumns):
// Rows is nil until a consumer that needs row-major tuples calls
// pg.Published.EnsureRows. Every serving path (aggregation, indexing, CSV
// export, scan estimation, crucial-tuple lookup) works directly on the
// columns.
func Read(r io.Reader) (*pg.Published, *pg.GuaranteeMetadata, error) {
	pub, gm, _, err := ReadRelease(r)
	return pub, gm, err
}

// ReadRelease is Read plus the release-chain block: nil for version-1 and
// version-2 snapshots and for version-3 snapshots outside any chain.
func ReadRelease(r io.Reader) (*pg.Published, *pg.GuaranteeMetadata, *ChainMetadata, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, nil, nil, fmt.Errorf("snapshot: reading header (truncated file?): %w", err)
	}
	if [6]byte(hdr[:6]) != magic {
		return nil, nil, nil, fmt.Errorf("snapshot: bad magic %q — not a snapshot file", hdr[:6])
	}
	version := binary.LittleEndian.Uint16(hdr[6:8])
	n := binary.LittleEndian.Uint64(hdr[8:16])
	if n > maxBodyLen {
		return nil, nil, nil, fmt.Errorf("snapshot: body length %d exceeds the %d-byte limit", n, maxBodyLen)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, nil, nil, fmt.Errorf("snapshot: reading %d-byte body (truncated file?): %w", n, err)
	}
	if sum := crc32.Checksum(body, castagnoli); sum != binary.LittleEndian.Uint32(hdr[16:20]) {
		return nil, nil, nil, fmt.Errorf("snapshot: body checksum mismatch (corrupted file)")
	}
	switch version {
	case versionV1:
		pub, gm, err := decodeBody(body)
		return pub, gm, nil, err
	case versionV2, Version:
		return readV2(r, body, version == Version)
	default:
		return nil, nil, nil, fmt.Errorf("snapshot: unsupported format version %d (reader supports %d, %d and %d)",
			version, versionV1, versionV2, Version)
	}
}

// Save writes the snapshot to path atomically enough for the single-writer
// case: a temporary file in the same directory renamed over the target, so a
// crash mid-write never leaves a half-written .pgsnap behind.
func Save(path string, pub *pg.Published, g *pg.GuaranteeMetadata) error {
	return SaveRelease(path, pub, g, nil)
}

// SaveRelease is Save with a release-chain block (see WriteRelease).
func SaveRelease(path string, pub *pg.Published, g *pg.GuaranteeMetadata, chain *ChainMetadata) error {
	tmp, err := os.CreateTemp(dirOf(path), ".pgsnap-*")
	if err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	bw := bufio.NewWriter(tmp)
	if err := WriteRelease(bw, pub, g, chain); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := bw.Flush(); err == nil {
		err = tmp.Close()
	} else {
		tmp.Close()
	}
	if err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("snapshot: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("snapshot: %w", err)
	}
	return nil
}

// Load reads the snapshot at path.
func Load(path string) (*pg.Published, *pg.GuaranteeMetadata, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("snapshot: %w", err)
	}
	defer f.Close()
	return Read(bufio.NewReader(f))
}

// LoadRelease reads the snapshot at path along with its release-chain block.
func LoadRelease(path string) (*pg.Published, *pg.GuaranteeMetadata, *ChainMetadata, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("snapshot: %w", err)
	}
	defer f.Close()
	return ReadRelease(bufio.NewReader(f))
}

func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' || path[i] == os.PathSeparator {
			return path[:i+1]
		}
	}
	return "."
}

// ---------------------------------------------------------------------------
// Body encoding

// enc is a little-endian append-only buffer.
type enc struct{ b []byte }

func (e *enc) u8(v uint8)    { e.b = append(e.b, v) }
func (e *enc) u32(v uint32)  { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *enc) u64(v uint64)  { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *enc) i32(v int32)   { e.u32(uint32(v)) }
func (e *enc) i64(v int64)   { e.u64(uint64(v)) }
func (e *enc) f64(v float64) { e.u64(math.Float64bits(v)) }
func (e *enc) str(s string) {
	e.u32(uint32(len(s)))
	e.b = append(e.b, s...)
}
func (e *enc) i32s(vs []int32) {
	e.u32(uint32(len(vs)))
	for _, v := range vs {
		e.i32(v)
	}
}

func encodeBody(pub *pg.Published, g *pg.GuaranteeMetadata) ([]byte, error) {
	rows := pub.EnsureRows()
	e := &enc{b: make([]byte, 0, 64+len(rows)*(8*pub.Schema.D()+16))}
	if err := encodePubMeta(e, pub); err != nil {
		return nil, err
	}

	// Rows.
	d := pub.Schema.D()
	e.u32(uint32(len(rows)))
	for i, r := range rows {
		if len(r.Box.Lo) != d || len(r.Box.Hi) != d {
			return nil, fmt.Errorf("snapshot: row %d box has %d/%d bounds for %d attributes",
				i, len(r.Box.Lo), len(r.Box.Hi), d)
		}
		for j := 0; j < d; j++ {
			e.i32(r.Box.Lo[j])
			e.i32(r.Box.Hi[j])
		}
		e.i32(r.Value)
		e.i64(int64(r.G))
		e.i64(int64(r.SourceRow))
	}

	encodeGuarantee(e, g)
	return e.b, nil
}

// encodePubMeta encodes the shared metadata prefix both format versions
// open their body with: schema, pipeline parameters, optional recoding.
func encodePubMeta(e *enc, pub *pg.Published) error {
	// Schema: d QI attributes then the sensitive attribute.
	e.u32(uint32(pub.Schema.D()))
	for _, a := range pub.Schema.QI {
		encodeAttr(e, a)
	}
	encodeAttr(e, pub.Schema.Sensitive)

	// Pipeline parameters.
	e.u8(uint8(pub.Algorithm))
	e.f64(pub.P)
	e.u32(uint32(pub.K))

	// Recoding (cut-based algorithms only; KD publishes raw boxes).
	if pub.Recoding == nil {
		e.u8(0)
	} else {
		if len(pub.Recoding.Hierarchies) != pub.Schema.D() || len(pub.Recoding.Cuts) != pub.Schema.D() {
			return fmt.Errorf("snapshot: recoding covers %d hierarchies / %d cuts for %d QI attributes",
				len(pub.Recoding.Hierarchies), len(pub.Recoding.Cuts), pub.Schema.D())
		}
		e.u8(1)
		for j, h := range pub.Recoding.Hierarchies {
			e.i32s(h.Parents())
			e.i32s(pub.Recoding.Cuts[j].Nodes())
		}
	}
	return nil
}

// encodeGuarantee encodes the optional guarantee metadata block.
func encodeGuarantee(e *enc, g *pg.GuaranteeMetadata) {
	if g == nil {
		e.u8(0)
		return
	}
	e.u8(1)
	e.f64(g.Lambda)
	e.f64(g.Rho1)
	e.f64(g.Rho2)
	e.f64(g.Delta)
}

func encodeAttr(e *enc, a *dataset.Attribute) {
	e.str(a.Name)
	e.u8(uint8(a.Kind))
	e.u32(uint32(len(a.Values)))
	for _, v := range a.Values {
		e.str(v)
	}
}

// ---------------------------------------------------------------------------
// Body decoding

// dec is a bounds-checked little-endian reader over the verified body. Every
// accessor returns the zero value after the first error; callers check err
// once per structural unit.
type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("snapshot: "+format, args...)
	}
}

func (d *dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.b) || d.off+n < d.off {
		d.fail("body truncated at offset %d (need %d more bytes)", d.off, n)
		return nil
	}
	s := d.b[d.off : d.off+n]
	d.off += n
	return s
}

func (d *dec) u8() uint8 {
	s := d.take(1)
	if s == nil {
		return 0
	}
	return s[0]
}

func (d *dec) u32() uint32 {
	s := d.take(4)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(s)
}

func (d *dec) u64() uint64 {
	s := d.take(8)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(s)
}

func (d *dec) i32() int32   { return int32(d.u32()) }
func (d *dec) i64() int64   { return int64(d.u64()) }
func (d *dec) f64() float64 { return math.Float64frombits(d.u64()) }

// count reads a u32 length field and sanity-bounds it against the bytes that
// can possibly remain, with elemSize the minimum encoded size of one element.
func (d *dec) count(what string, elemSize int) int {
	n := int(d.u32())
	if d.err == nil && n*elemSize > len(d.b)-d.off {
		d.fail("%s count %d exceeds remaining body", what, n)
	}
	if d.err != nil {
		return 0
	}
	return n
}

func (d *dec) str() string {
	n := d.count("string length", 1)
	return string(d.take(n))
}

func (d *dec) i32s(what string) []int32 {
	n := d.count(what, 4)
	if n == 0 {
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = d.i32()
	}
	return out
}

// decodePubMeta decodes the shared metadata prefix (schema, parameters,
// recoding) into a row-less publication shell.
func decodePubMeta(d *dec) (*pg.Published, error) {
	// Schema.
	nqi := d.count("QI attribute", 9)
	if d.err != nil {
		return nil, d.err
	}
	qi := make([]*dataset.Attribute, 0, nqi)
	for j := 0; j < nqi; j++ {
		a, err := decodeAttr(d)
		if err != nil {
			return nil, err
		}
		qi = append(qi, a)
	}
	sens, err := decodeAttr(d)
	if err != nil {
		return nil, err
	}
	schema, err := dataset.NewSchema(qi, sens)
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}

	// Pipeline parameters.
	alg := pg.Algorithm(d.u8())
	switch alg {
	case pg.KD, pg.TDS, pg.FullDomain:
	default:
		if d.err == nil {
			return nil, fmt.Errorf("snapshot: unknown algorithm code %d", int(alg))
		}
	}
	p := d.f64()
	k := int(d.u32())
	if d.err != nil {
		return nil, d.err
	}
	if math.IsNaN(p) || p < 0 || p > 1 {
		return nil, fmt.Errorf("snapshot: retention probability %v outside [0,1]", p)
	}

	pub := &pg.Published{Schema: schema, Algorithm: alg, P: p, K: k}

	// Recoding.
	switch d.u8() {
	case 0:
	case 1:
		hiers := make([]*hierarchy.Hierarchy, schema.D())
		cuts := make([]*hierarchy.Cut, schema.D())
		for j := 0; j < schema.D(); j++ {
			parents := d.i32s("hierarchy node")
			cutNodes := d.i32s("cut node")
			if d.err != nil {
				return nil, d.err
			}
			h, err := hierarchy.FromParents(schema.QI[j].Size(), parents)
			if err != nil {
				return nil, fmt.Errorf("snapshot: attribute %q: %w", schema.QI[j].Name, err)
			}
			c, err := hierarchy.NewCut(h, cutNodes)
			if err != nil {
				return nil, fmt.Errorf("snapshot: attribute %q: %w", schema.QI[j].Name, err)
			}
			hiers[j], cuts[j] = h, c
		}
		rec, err := generalize.NewRecoding(schema, hiers, cuts)
		if err != nil {
			return nil, fmt.Errorf("snapshot: %w", err)
		}
		pub.Recoding = rec
	default:
		if d.err == nil {
			return nil, fmt.Errorf("snapshot: bad recoding presence flag")
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	return pub, nil
}

// decodeGuarantee decodes the optional guarantee metadata block.
func decodeGuarantee(d *dec) (*pg.GuaranteeMetadata, error) {
	switch d.u8() {
	case 0:
	case 1:
		gm := &pg.GuaranteeMetadata{
			Lambda: d.f64(), Rho1: d.f64(), Rho2: d.f64(), Delta: d.f64(),
		}
		if d.err == nil {
			return gm, nil
		}
	default:
		if d.err == nil {
			return nil, fmt.Errorf("snapshot: bad guarantee presence flag")
		}
	}
	return nil, d.err
}

func decodeBody(body []byte) (*pg.Published, *pg.GuaranteeMetadata, error) {
	d := &dec{b: body}
	pub, err := decodePubMeta(d)
	if err != nil {
		return nil, nil, err
	}
	schema := pub.Schema

	// Rows.
	dd := schema.D()
	rowSize := 8*dd + 4 + 8 + 8
	nrows := d.count("row", rowSize)
	pub.Rows = make([]pg.Row, 0, nrows)
	for i := 0; i < nrows; i++ {
		r := pg.Row{Box: generalize.Box{Lo: make([]int32, dd), Hi: make([]int32, dd)}}
		for j := 0; j < dd; j++ {
			r.Box.Lo[j] = d.i32()
			r.Box.Hi[j] = d.i32()
		}
		r.Value = d.i32()
		g := d.i64()
		src := d.i64()
		if d.err != nil {
			return nil, nil, d.err
		}
		if g < 1 || g > math.MaxInt32 {
			return nil, nil, fmt.Errorf("snapshot: row %d has G = %d", i, g)
		}
		if src < -1 || src > math.MaxInt32 {
			return nil, nil, fmt.Errorf("snapshot: row %d has source row %d", i, src)
		}
		r.G, r.SourceRow = int(g), int(src)
		pub.Rows = append(pub.Rows, r)
	}

	// Guarantee metadata.
	gm, err := decodeGuarantee(d)
	if err != nil {
		return nil, nil, err
	}
	if d.off != len(d.b) {
		return nil, nil, fmt.Errorf("snapshot: %d trailing bytes after the guarantee block", len(d.b)-d.off)
	}
	if len(pub.Rows) > 0 {
		if err := pub.Validate(); err != nil {
			return nil, nil, fmt.Errorf("snapshot: loaded publication invalid: %w", err)
		}
	}
	return pub, gm, nil
}

func decodeAttr(d *dec) (*dataset.Attribute, error) {
	name := d.str()
	kind := dataset.Kind(d.u8())
	n := d.count("attribute value", 4)
	if d.err != nil {
		return nil, d.err
	}
	if kind != dataset.Discrete && kind != dataset.Continuous {
		return nil, fmt.Errorf("snapshot: attribute %q has unknown kind %d", name, int(kind))
	}
	labels := make([]string, 0, n)
	for i := 0; i < n; i++ {
		labels = append(labels, d.str())
	}
	if d.err != nil {
		return nil, d.err
	}
	a, err := dataset.NewAttribute(name, labels...)
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	a.Kind = kind
	return a, nil
}
