package snapshot

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"reflect"
)

// ChainMetadata is the release-chain block a version-3 snapshot carries when
// it is one release of a re-publication series (pg.Republish). It names the
// release's position in the chain, pins its parent by checksum, summarizes
// the delta that produced it, and records the cross-release guarantee
// accounting — the per-release odds-ratio bound and the composed breach
// bound Δ_T of repub.ComposedGrowthBound — so a consumer can audit the
// multi-release privacy contract without the microdata.
//
// The parent link is the parent file's header CRC (the CRC-32C of its
// metadata body, read cheaply by HeaderCRC). Because the v2/v3 metadata
// body embeds the per-block directory with each column block's own CRC,
// that one checksum transitively pins the parent's entire byte content.
type ChainMetadata struct {
	// Release is the 0-based release number; release 0 is the base publish.
	Release int `json:"release"`
	// ParentCRC is the header CRC of release Release-1's snapshot file, and
	// 0 for release 0 (which has no parent).
	ParentCRC uint32 `json:"parent_crc"`
	// Inserts and Deletes summarize the delta that produced this release
	// from its parent's microdata; both are 0 for release 0 and for pure
	// re-perturbation releases.
	Inserts int `json:"inserts"`
	Deletes int `json:"deletes"`
	// SourceRows is the post-delta microdata row count this release was
	// published from.
	SourceRows int `json:"source_rows"`
	// OddsRatio is the per-release odds-ratio bound R = 1 + h^T p / u of
	// repub.OddsRatioBound under the release's announced (p, λ, k, m).
	OddsRatio float64 `json:"odds_ratio"`
	// ComposedDelta is the composed T-release breach-probability growth
	// bound Δ_T = (√R^T − 1)/(√R^T + 1) with T = Release + 1.
	ComposedDelta float64 `json:"composed_delta"`
}

// ChainFieldNames returns the exported field names of ChainMetadata in
// declaration (and encoding) order. It exists for tooling and the
// documentation tests, which pin the release-chain spec in
// docs/REPUBLICATION.md to this list.
func ChainFieldNames() []string {
	t := reflect.TypeOf(ChainMetadata{})
	names := make([]string, t.NumField())
	for i := range names {
		names[i] = t.Field(i).Name
	}
	return names
}

// encodeChain encodes the optional release-chain block, mirroring
// encodeGuarantee: a presence flag byte, then the fields in ChainFieldNames
// order.
func encodeChain(e *enc, c *ChainMetadata) error {
	if c == nil {
		e.u8(0)
		return nil
	}
	if c.Release < 0 || c.Release > math.MaxInt32 {
		return fmt.Errorf("snapshot: chain release %d outside [0, 2^31)", c.Release)
	}
	if c.Release == 0 && c.ParentCRC != 0 {
		return fmt.Errorf("snapshot: release 0 cannot have a parent CRC")
	}
	if c.Inserts < 0 || c.Deletes < 0 || c.SourceRows < 0 {
		return fmt.Errorf("snapshot: negative chain delta summary (%d inserts, %d deletes, %d source rows)",
			c.Inserts, c.Deletes, c.SourceRows)
	}
	e.u8(1)
	e.u32(uint32(c.Release))
	e.u32(c.ParentCRC)
	e.u64(uint64(c.Inserts))
	e.u64(uint64(c.Deletes))
	e.u64(uint64(c.SourceRows))
	e.f64(c.OddsRatio)
	e.f64(c.ComposedDelta)
	return nil
}

// decodeChain decodes the optional release-chain block.
func decodeChain(d *dec) (*ChainMetadata, error) {
	switch d.u8() {
	case 0:
		return nil, d.err
	case 1:
	default:
		if d.err == nil {
			return nil, fmt.Errorf("snapshot: bad release-chain presence flag")
		}
		return nil, d.err
	}
	c := &ChainMetadata{}
	release := d.u32()
	c.ParentCRC = d.u32()
	ins := d.u64()
	del := d.u64()
	src := d.u64()
	c.OddsRatio = d.f64()
	c.ComposedDelta = d.f64()
	if d.err != nil {
		return nil, d.err
	}
	if release > math.MaxInt32 {
		return nil, fmt.Errorf("snapshot: chain release %d outside [0, 2^31)", release)
	}
	if ins > maxBodyLen || del > maxBodyLen || src > maxBodyLen {
		return nil, fmt.Errorf("snapshot: implausible chain delta summary (%d inserts, %d deletes, %d source rows)",
			ins, del, src)
	}
	c.Release, c.Inserts, c.Deletes, c.SourceRows = int(release), int(ins), int(del), int(src)
	if c.Release == 0 && c.ParentCRC != 0 {
		return nil, fmt.Errorf("snapshot: release 0 cannot have a parent CRC")
	}
	if math.IsNaN(c.OddsRatio) || c.OddsRatio < 1 {
		return nil, fmt.Errorf("snapshot: chain odds-ratio bound %v below 1", c.OddsRatio)
	}
	if math.IsNaN(c.ComposedDelta) || c.ComposedDelta < 0 || c.ComposedDelta > 1 {
		return nil, fmt.Errorf("snapshot: composed breach bound %v outside [0,1]", c.ComposedDelta)
	}
	return c, nil
}

// HeaderCRC reads only the 20-byte header at path and returns the recorded
// body CRC — the checksum that identifies a release in the chain
// (ChainMetadata's ParentCRC refers to it). Unlike FileCRC it does not
// touch the column blocks, yet pins them transitively through the
// directory's per-block CRCs inside the body.
func HeaderCRC(path string) (uint32, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("snapshot: %w", err)
	}
	defer f.Close()
	var hdr [headerLen]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return 0, fmt.Errorf("snapshot: reading header of %s (truncated file?): %w", path, err)
	}
	if [6]byte(hdr[:6]) != magic {
		return 0, fmt.Errorf("snapshot: %s: bad magic %q — not a snapshot file", path, hdr[:6])
	}
	return binary.LittleEndian.Uint32(hdr[16:20]), nil
}
