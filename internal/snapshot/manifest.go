package snapshot

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// A shard manifest (.pgman) is the release descriptor of a sharded
// publication: one entry per shard naming its snapshot file, the CRC-32C of
// that file's bytes, and its row counts, plus the parameters every shard
// shares (k, p, algorithm, root seed). The coordinator loads it to know what
// a complete release looks like before it trusts any shard server, and
// offline tools (pgquery -manifest) load it to open all shards at once.
//
// # File format
//
// The layout mirrors the snapshot header so one reader discipline covers
// both artifacts:
//
//	offset  size  field
//	0       6     magic "PGMAN\x00"
//	6       2     format version, little-endian uint16 (currently 1)
//	8       8     body length in bytes, little-endian uint64
//	16      4     CRC-32C (Castagnoli) of the body, little-endian uint32
//	20      len   body
//
// The body is the same deterministic little-endian encoding the snapshot
// codec uses: fixed-width integers, length-prefixed UTF-8 strings. Fields in
// order: k (u32), p (f64), algorithm (str), seed (i64), source rows (u64),
// shard count (u32), then per shard: path (str, relative to the manifest's
// directory), snapshot CRC-32C (u32), published rows (u64), source rows
// (u64). ReadManifest rejects truncation, trailing garbage, checksum
// mismatches and structurally invalid entries.

// manifestMagic identifies a shard manifest file.
var manifestMagic = [6]byte{'P', 'G', 'M', 'A', 'N', 0}

// ManifestVersion is the current manifest format version.
const ManifestVersion = 1

// ShardEntry describes one shard of a sharded release.
type ShardEntry struct {
	// Path locates the shard's snapshot, relative to the manifest file's
	// directory (absolute paths are preserved as-is).
	Path string
	// CRC is the CRC-32C (Castagnoli) of the snapshot file's entire bytes.
	CRC uint32
	// Rows is the shard's published row count |D*_s|.
	Rows int
	// SourceRows is the microdata row count the shard was published from.
	SourceRows int
}

// Manifest is the parsed shard manifest.
type Manifest struct {
	// K, P, Algorithm are the publication parameters every shard shares.
	K         int
	P         float64
	Algorithm string
	// Seed is the root seed the per-shard publication seeds were split from.
	Seed int64
	// SourceRows is the total microdata cardinality across shards.
	SourceRows int
	// Shards lists the shard entries in shard-index order. The order is the
	// merge order: a coordinator composes answers shard 0 first.
	Shards []ShardEntry
}

// Validate checks the manifest's structural invariants.
func (m *Manifest) Validate() error {
	if m.K < 1 {
		return fmt.Errorf("snapshot: manifest k = %d", m.K)
	}
	if m.P < 0 || m.P > 1 {
		return fmt.Errorf("snapshot: manifest retention probability %v outside [0,1]", m.P)
	}
	if len(m.Shards) == 0 {
		return fmt.Errorf("snapshot: manifest has no shards")
	}
	src := 0
	for i, s := range m.Shards {
		if s.Path == "" {
			return fmt.Errorf("snapshot: manifest shard %d has no path", i)
		}
		if s.Rows < 1 {
			return fmt.Errorf("snapshot: manifest shard %d has %d published rows", i, s.Rows)
		}
		if s.SourceRows < s.Rows {
			return fmt.Errorf("snapshot: manifest shard %d publishes %d rows from %d source rows", i, s.Rows, s.SourceRows)
		}
		src += s.SourceRows
	}
	if src != m.SourceRows {
		return fmt.Errorf("snapshot: manifest shard source rows sum to %d, header says %d", src, m.SourceRows)
	}
	return nil
}

// ShardPath resolves shard i's snapshot path against the manifest's
// directory.
func (m *Manifest) ShardPath(manifestPath string, i int) string {
	p := m.Shards[i].Path
	if filepath.IsAbs(p) {
		return p
	}
	return filepath.Join(filepath.Dir(manifestPath), p)
}

// WriteManifest serializes the manifest to w.
func WriteManifest(w io.Writer, m *Manifest) error {
	if err := m.Validate(); err != nil {
		return err
	}
	e := &enc{}
	e.u32(uint32(m.K))
	e.f64(m.P)
	e.str(m.Algorithm)
	e.i64(m.Seed)
	e.u64(uint64(m.SourceRows))
	e.u32(uint32(len(m.Shards)))
	for _, s := range m.Shards {
		e.str(s.Path)
		e.u32(s.CRC)
		e.u64(uint64(s.Rows))
		e.u64(uint64(s.SourceRows))
	}
	hdr := make([]byte, headerLen)
	copy(hdr[:6], manifestMagic[:])
	binary.LittleEndian.PutUint16(hdr[6:8], ManifestVersion)
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(len(e.b)))
	binary.LittleEndian.PutUint32(hdr[16:20], crc32.Checksum(e.b, castagnoli))
	if _, err := w.Write(hdr); err != nil {
		return fmt.Errorf("snapshot: writing manifest header: %w", err)
	}
	if _, err := w.Write(e.b); err != nil {
		return fmt.Errorf("snapshot: writing manifest body: %w", err)
	}
	return nil
}

// ReadManifest parses and validates a manifest.
func ReadManifest(r io.Reader) (*Manifest, error) {
	hdr := make([]byte, headerLen)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("snapshot: reading manifest header: %w", err)
	}
	if [6]byte(hdr[:6]) != manifestMagic {
		return nil, fmt.Errorf("snapshot: not a shard manifest (bad magic)")
	}
	if v := binary.LittleEndian.Uint16(hdr[6:8]); v != ManifestVersion {
		return nil, fmt.Errorf("snapshot: manifest format version %d, this build reads %d", v, ManifestVersion)
	}
	bodyLen := binary.LittleEndian.Uint64(hdr[8:16])
	if bodyLen > maxBodyLen {
		return nil, fmt.Errorf("snapshot: manifest body length %d exceeds the %d limit", bodyLen, maxBodyLen)
	}
	body := make([]byte, bodyLen)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("snapshot: manifest body truncated: %w", err)
	}
	if extra, err := io.Copy(io.Discard, io.LimitReader(r, 1)); err == nil && extra > 0 {
		return nil, fmt.Errorf("snapshot: trailing garbage after manifest body")
	}
	if got, want := crc32.Checksum(body, castagnoli), binary.LittleEndian.Uint32(hdr[16:20]); got != want {
		return nil, fmt.Errorf("snapshot: manifest checksum mismatch: body %08x, header %08x", got, want)
	}
	d := &dec{b: body}
	m := &Manifest{}
	m.K = int(d.u32())
	m.P = d.f64()
	m.Algorithm = d.str()
	m.Seed = d.i64()
	m.SourceRows = int(d.u64())
	n := int(d.u32())
	if d.err == nil && n > 0 && n <= len(body) {
		m.Shards = make([]ShardEntry, n)
		for i := range m.Shards {
			m.Shards[i].Path = d.str()
			m.Shards[i].CRC = d.u32()
			m.Shards[i].Rows = int(d.u64())
			m.Shards[i].SourceRows = int(d.u64())
		}
	} else if d.err == nil {
		return nil, fmt.Errorf("snapshot: manifest claims %d shards", n)
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(d.b) {
		return nil, fmt.Errorf("snapshot: %d undecoded bytes after manifest fields", len(d.b)-d.off)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// SaveManifest writes the manifest to path with the same atomic
// temp-and-rename discipline Save uses for snapshots.
func SaveManifest(path string, m *Manifest) error {
	tmp, err := os.CreateTemp(dirOf(path), ".pgman-*")
	if err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	bw := bufio.NewWriter(tmp)
	if err := WriteManifest(bw, m); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := bw.Flush(); err == nil {
		err = tmp.Close()
	} else {
		tmp.Close()
	}
	if err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("snapshot: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("snapshot: %w", err)
	}
	return nil
}

// LoadManifest reads the manifest at path.
func LoadManifest(path string) (*Manifest, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	defer f.Close()
	return ReadManifest(bufio.NewReader(f))
}

// FileCRC computes the CRC-32C (Castagnoli) of a file's entire bytes — the
// checksum a manifest entry records for its shard snapshot.
func FileCRC(path string) (uint32, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("snapshot: %w", err)
	}
	defer f.Close()
	h := crc32.New(castagnoli)
	if _, err := io.Copy(h, f); err != nil {
		return 0, fmt.Errorf("snapshot: checksumming %s: %w", path, err)
	}
	return h.Sum32(), nil
}

// VerifyShards re-checksums every shard snapshot named by the manifest (at
// paths resolved against manifestPath) and fails on the first mismatch —
// the offline counterpart of the coordinator's over-HTTP validation.
func (m *Manifest) VerifyShards(manifestPath string) error {
	for i := range m.Shards {
		p := m.ShardPath(manifestPath, i)
		crc, err := FileCRC(p)
		if err != nil {
			return fmt.Errorf("snapshot: manifest shard %d: %w", i, err)
		}
		if crc != m.Shards[i].CRC {
			return fmt.Errorf("snapshot: manifest shard %d (%s): file CRC %08x, manifest records %08x",
				i, p, crc, m.Shards[i].CRC)
		}
	}
	return nil
}

// FileVersion reports the snapshot format version of the file at path
// without decoding its body, so callers can explain version-specific
// behavior (pgserve -mmap refuses v1 with an upgrade hint) before paying a
// full load.
func FileVersion(path string) (uint16, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("snapshot: %w", err)
	}
	defer f.Close()
	hdr := make([]byte, 8)
	if _, err := io.ReadFull(f, hdr); err != nil {
		return 0, fmt.Errorf("snapshot: reading header of %s: %w", path, err)
	}
	if [6]byte(hdr[:6]) != magic {
		return 0, fmt.Errorf("snapshot: %s is not a snapshot (bad magic)", path)
	}
	return binary.LittleEndian.Uint16(hdr[6:8]), nil
}
