//go:build !linux && !darwin

package snapshot

import (
	"fmt"
	"os"
)

// mapFile on platforms without a wired mmap syscall reads the file into an
// anonymous buffer: OpenMapped still works, it just pays the read up front.
func mapFile(path string) (data []byte, mapped bool, err error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, false, fmt.Errorf("snapshot: %w", err)
	}
	if len(b) == 0 {
		return nil, false, fmt.Errorf("snapshot: %s is empty", path)
	}
	return b, false, nil
}

func unmapFile(b []byte) error { return nil }
