package snapshot

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"pgpub/internal/obs"
	"pgpub/internal/pg"
	"pgpub/internal/query"
)

// Mapped is a version-2/3 snapshot opened in place: the publication's row
// columns and the serving index alias the file's pages (read-only mmap on
// linux/darwin, an in-memory copy elsewhere or when mapping fails). Close
// releases the mapping — after Close every slice that aliased it is invalid,
// so drop the Mapped only when the serving structures built from it are no
// longer in use.
type Mapped struct {
	// Pub is the publication in columnar form (Rows nil; see
	// pg.Published.EnsureRows — but note materializing rows copies out of the
	// mapping, defeating the point on the serving path).
	Pub *pg.Published
	// Guarantee is the certified guarantee metadata, nil when absent.
	Guarantee *pg.GuaranteeMetadata
	// Chain is the release-chain block, nil for version-2 snapshots and for
	// version-3 snapshots outside any re-publication chain.
	Chain *ChainMetadata
	// Index is the serving index, reconstructed around the mapped arrays
	// without a rebuild.
	Index *query.Index

	data   []byte
	mapped bool
	dirs   []blockDir
	base   int
}

// OpenMapped opens a version-2 snapshot for serving without parsing it: the
// file is mapped read-only and the column arrays are adopted in place, so
// the cost of a cold start is the metadata pages plus the page faults the
// first queries take — not a decode of the whole file.
//
// Integrity at open is deliberately shallower than Read's: the header and
// metadata body are fully CRC-verified and every structural array the index
// traversal depends on is validated, but the bulk column payloads are NOT
// checksummed (that would fault in every page, which is exactly the cost
// being avoided) and the publication validator is not run. Call Verify to
// pay that cost when wanted; Read/Load remain the fully-verifying path.
//
// Version-1 snapshots cannot be mapped (their body is a parse-only stream);
// use Load.
func OpenMapped(path string) (*Mapped, error) { return OpenMappedObserved(path, nil) }

// OpenMappedObserved is OpenMapped with the serving-path instrumentation
// NewIndexObserved wires. A nil registry disables it.
func OpenMappedObserved(path string, reg *obs.Registry) (*Mapped, error) {
	data, mapped, err := mapFile(path)
	if err != nil {
		return nil, err
	}
	m, err := newMapped(data, mapped, reg)
	if err != nil {
		if mapped {
			unmapFile(data)
		}
		return nil, err
	}
	return m, nil
}

// newMapped builds the serving view over a snapshot image.
func newMapped(data []byte, mapped bool, reg *obs.Registry) (*Mapped, error) {
	if len(data) < headerLen {
		return nil, fmt.Errorf("snapshot: %d-byte file shorter than the %d-byte header (truncated file?)", len(data), headerLen)
	}
	if [6]byte(data[:6]) != magic {
		return nil, fmt.Errorf("snapshot: bad magic %q — not a snapshot file", data[:6])
	}
	version := binary.LittleEndian.Uint16(data[6:8])
	if version == versionV1 {
		return nil, fmt.Errorf("snapshot: version 1 snapshots have no mappable layout; use Load")
	}
	if version != versionV2 && version != Version {
		return nil, fmt.Errorf("snapshot: unsupported format version %d (reader supports %d, %d and %d)",
			version, versionV1, versionV2, Version)
	}
	n := binary.LittleEndian.Uint64(data[8:16])
	if n > maxBodyLen || headerLen+int(n) > len(data) {
		return nil, fmt.Errorf("snapshot: metadata length %d exceeds the file (truncated file?)", n)
	}
	meta := data[headerLen : headerLen+int(n)]
	if crc32.Checksum(meta, castagnoli) != binary.LittleEndian.Uint32(data[16:20]) {
		return nil, fmt.Errorf("snapshot: metadata checksum mismatch (corrupted file)")
	}

	d := &dec{b: meta}
	pub, err := decodePubMeta(d)
	if err != nil {
		return nil, err
	}
	gm, err := decodeGuarantee(d)
	if err != nil {
		return nil, err
	}
	var chain *ChainMetadata
	if version == Version {
		if chain, err = decodeChain(d); err != nil {
			return nil, err
		}
	}
	rowN, root, dirs, err := decodeV2Meta(d, len(meta))
	if err != nil {
		return nil, err
	}
	base := headerLen + len(meta)
	last := dirs[len(dirs)-1]
	if int(last.off)+prefixLen+int(last.n) != len(data) {
		return nil, fmt.Errorf("snapshot: file is %d bytes, directory ends at %d (truncated file?)",
			len(data), int(last.off)+prefixLen+int(last.n))
	}
	payloads := make([][]byte, len(dirs))
	for i, dd := range dirs {
		if pre := binary.LittleEndian.Uint64(data[dd.off:]); pre != dd.n {
			return nil, fmt.Errorf("snapshot: %s block length prefix %d disagrees with directory %d",
				v2Blocks[i].name, pre, dd.n)
		}
		payloads[i] = data[int(dd.off)+prefixLen : int(dd.off)+prefixLen+int(dd.n)]
	}

	// Shape-check the row columns (FromColumns runs Check) and rebuild the
	// index around the mapped arrays; NewIndexFromParts validates every
	// structural array. Deep validation (payload CRCs, pg.Validate) is
	// Verify's job.
	cols := &pg.RowColumns{
		N:         rowN,
		D:         pub.Schema.D(),
		Lo:        bytesToI32(payloads[0]),
		Hi:        bytesToI32(payloads[1]),
		Value:     bytesToI32(payloads[2]),
		G:         bytesToI64(payloads[3]),
		SourceRow: bytesToI64(payloads[4]),
	}
	out, err := pg.FromColumns(*pub, cols)
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	ix, err := query.NewIndexFromPartsObserved(out.Schema, v2IndexParts(out.P, root, payloads), reg)
	if err != nil {
		return nil, fmt.Errorf("snapshot: mapped serving index invalid: %w", err)
	}
	return &Mapped{Pub: out, Guarantee: gm, Chain: chain, Index: ix, data: data, mapped: mapped, dirs: dirs, base: base}, nil
}

// Mmapped reports whether the snapshot is actually memory-mapped (false on
// platforms or filesystems where mapFile fell back to a read).
func (m *Mapped) Mmapped() bool { return m.mapped }

// Verify runs the integrity checks OpenMapped skipped: every block CRC,
// every padding byte, and the full publication validator. It faults in the
// whole file — use it when corruption matters more than cold-start latency
// (e.g. a one-time check after copying a snapshot between hosts).
func (m *Mapped) Verify() error {
	if _, err := verifyV2Blocks(m.data[m.base:], m.base, m.dirs); err != nil {
		return err
	}
	if m.Pub.Len() > 0 {
		if err := m.Pub.Validate(); err != nil {
			return fmt.Errorf("snapshot: mapped publication invalid: %w", err)
		}
	}
	return nil
}

// Close releases the mapping. The Mapped's publication and index — and
// anything sharing their arrays — must not be used afterwards.
func (m *Mapped) Close() error {
	if m.data == nil {
		return nil
	}
	data, mapped := m.data, m.mapped
	m.data, m.mapped = nil, false
	if mapped {
		if err := unmapFile(data); err != nil {
			return fmt.Errorf("snapshot: %w", err)
		}
	}
	return nil
}
