//go:build linux || darwin

package snapshot

import (
	"fmt"
	"math"
	"os"
	"syscall"
)

// mapFile maps path read-only into memory and reports mapped=true. When the
// kernel refuses (an unusual filesystem, resource limits) it degrades to
// reading the file into an anonymous buffer — same bytes, no page-fault
// laziness — and reports mapped=false.
func mapFile(path string) (data []byte, mapped bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, false, fmt.Errorf("snapshot: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, false, fmt.Errorf("snapshot: %w", err)
	}
	size := st.Size()
	if size == 0 {
		return nil, false, fmt.Errorf("snapshot: %s is empty", path)
	}
	if uint64(size) > math.MaxInt {
		return nil, false, fmt.Errorf("snapshot: %s is too large to map", path)
	}
	b, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		b, rerr := os.ReadFile(path)
		if rerr != nil {
			return nil, false, fmt.Errorf("snapshot: %w", rerr)
		}
		return b, false, nil
	}
	return b, true, nil
}

// unmapFile releases a mapping returned by mapFile with mapped=true.
func unmapFile(b []byte) error { return syscall.Munmap(b) }
