package snapshot

import (
	"encoding/binary"
	"math"
	"unsafe"
)

// The v2 column blocks are little-endian images of []int32/[]int64/[]float64
// arrays. On little-endian hosts (every platform this project targets in
// practice) the image *is* the in-memory representation, so both directions
// of the conversion can alias instead of copy — which is the whole point of
// the mmap serving path: the file's pages become the serving arrays. On
// big-endian hosts, or when a buffer lands misaligned, the helpers fall back
// to an element-wise copy; the format stays portable, only the zero-copy
// fast path is lost.

// hostLittle reports whether the host stores integers little-endian.
var hostLittle = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// aligned reports whether b's first byte sits on an n-byte boundary.
func aligned(b []byte, n uintptr) bool {
	return uintptr(unsafe.Pointer(&b[0]))%n == 0
}

// i32Bytes returns the little-endian byte image of v, aliasing v's memory
// on little-endian hosts. Callers must not write through the result.
func i32Bytes(v []int32) []byte {
	if len(v) == 0 {
		return nil
	}
	if hostLittle {
		return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), len(v)*4)
	}
	b := make([]byte, len(v)*4)
	for i, x := range v {
		binary.LittleEndian.PutUint32(b[i*4:], uint32(x))
	}
	return b
}

// i64Bytes is i32Bytes for []int64.
func i64Bytes(v []int64) []byte {
	if len(v) == 0 {
		return nil
	}
	if hostLittle {
		return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), len(v)*8)
	}
	b := make([]byte, len(v)*8)
	for i, x := range v {
		binary.LittleEndian.PutUint64(b[i*8:], uint64(x))
	}
	return b
}

// f64Bytes is i32Bytes for []float64 (IEEE-754 bit patterns).
func f64Bytes(v []float64) []byte {
	if len(v) == 0 {
		return nil
	}
	if hostLittle {
		return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), len(v)*8)
	}
	b := make([]byte, len(v)*8)
	for i, x := range v {
		binary.LittleEndian.PutUint64(b[i*8:], math.Float64bits(x))
	}
	return b
}

// bytesToI32 interprets b (length a multiple of 4) as little-endian int32s,
// aliasing b's memory when the host is little-endian and b is 4-byte
// aligned. Callers must not write through the result.
func bytesToI32(b []byte) []int32 {
	n := len(b) / 4
	if n == 0 {
		return nil
	}
	if hostLittle && aligned(b, 4) {
		return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out
}

// bytesToI64 is bytesToI32 for []int64.
func bytesToI64(b []byte) []int64 {
	n := len(b) / 8
	if n == 0 {
		return nil
	}
	if hostLittle && aligned(b, 8) {
		return unsafe.Slice((*int64)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out
}

// bytesToF64 is bytesToI32 for []float64.
func bytesToF64(b []byte) []float64 {
	n := len(b) / 8
	if n == 0 {
		return nil
	}
	if hostLittle && aligned(b, 8) {
		return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out
}
