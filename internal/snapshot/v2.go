package snapshot

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"pgpub/internal/pg"
	"pgpub/internal/query"
)

// Version-2/3 layout. The header's body (CRC'd like any version's) is the
// metadata:
//
//	encodePubMeta        schema, algorithm, p, K, recoding
//	encodeGuarantee      optional guarantee block
//	encodeChain          optional release-chain block (version 3 only)
//	u64                  row count N
//	i32                  serving-index kd-tree root (-1 when empty)
//	u32                  block count (always len(v2Blocks))
//	per block            u64 file offset, u64 payload length, u32 CRC-32C
//
// After the metadata come the column blocks, in the fixed v2Blocks order.
// Each block starts at a 4096-byte-aligned file offset with a u64
// little-endian length prefix (equal to the directory's payload length)
// followed by the raw payload — the little-endian image of one
// []int32/[]int64/[]float64 array. Gaps forced by alignment are zero-filled
// and the file ends exactly at the last block's end. Payloads start 8 bytes
// past a page boundary, so every element width divides its payload's
// alignment — which is what lets OpenMapped adopt the mapped pages as Go
// slices without copying.
//
// The directory is authoritative for offsets and lengths; the length
// prefixes are deliberate redundancy so a block is self-describing when the
// metadata page is unavailable (and a cheap consistency check when it is).

// pageAlign is the file alignment of every v2 column block.
const pageAlign = 4096

// prefixLen is the u64 length prefix preceding each block payload.
const prefixLen = 8

// dirEntryLen is the encoded size of one block directory entry.
const dirEntryLen = 8 + 8 + 4

// v2Block describes one column block: its name (for error messages and the
// format spec) and element width in bytes (payload length must divide it).
type v2Block struct {
	name string
	elem int
}

// v2Blocks is the fixed block order of the format. Changing it is a format
// break: readers locate blocks by position, not by name.
var v2Blocks = []v2Block{
	{"rows.lo", 4}, {"rows.hi", 4}, {"rows.value", 4}, {"rows.g", 8}, {"rows.source", 8},
	{"ent.lo", 4}, {"ent.hi", 4}, {"ent.g", 8},
	{"val.off", 4}, {"val.code", 4}, {"val.w", 8},
	{"node.lo", 4}, {"node.hi", 4}, {"node.g", 8},
	{"node.hist", 8}, {"node.pref", 8},
	{"node.left", 4}, {"node.right", 4}, {"node.elo", 4}, {"node.ehi", 4},
	{"grid.sat", 8},
}

// V2BlockNames returns the block names of the version-2 layout in file
// order. It exists for tooling and the documentation tests, which pin the
// format spec in docs/SERVING.md to this table.
func V2BlockNames() []string {
	names := make([]string, len(v2Blocks))
	for i, b := range v2Blocks {
		names[i] = b.name
	}
	return names
}

// blockDir is one decoded directory entry.
type blockDir struct {
	off, n uint64
	crc    uint32
}

// alignUp rounds x up to the next pageAlign boundary.
func alignUp(x int) int { return (x + pageAlign - 1) &^ (pageAlign - 1) }

// v2Payloads gathers the 21 column payloads in v2Blocks order. On
// little-endian hosts the byte slices alias the source arrays (no copy).
func v2Payloads(cols *pg.RowColumns, parts query.IndexParts) [][]byte {
	return [][]byte{
		i32Bytes(cols.Lo), i32Bytes(cols.Hi), i32Bytes(cols.Value),
		i64Bytes(cols.G), i64Bytes(cols.SourceRow),
		i32Bytes(parts.EntLo), i32Bytes(parts.EntHi), f64Bytes(parts.EntG),
		i32Bytes(parts.ValOff), i32Bytes(parts.ValCode), f64Bytes(parts.ValW),
		i32Bytes(parts.NodeLo), i32Bytes(parts.NodeHi), f64Bytes(parts.NodeG),
		f64Bytes(parts.NodeHist), f64Bytes(parts.NodePref),
		i32Bytes(parts.NodeLeft), i32Bytes(parts.NodeRight),
		i32Bytes(parts.NodeELo), i32Bytes(parts.NodeEHi),
		f64Bytes(parts.GridSat),
	}
}

// writeV2 emits the current (version 3) format: metadata body, then the row
// columns and the prebuilt serving index as page-aligned blocks. The index
// is built here — publish time — so every cold start afterwards adopts it
// instead of rebuilding it.
func writeV2(w io.Writer, pub *pg.Published, g *pg.GuaranteeMetadata, chain *ChainMetadata) error {
	cols := pub.Columns()
	if err := cols.Check(); err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	for i := 0; i < cols.N; i++ {
		if cols.G[i] < 1 || cols.G[i] > math.MaxInt32 {
			return fmt.Errorf("snapshot: row %d has G = %d", i, cols.G[i])
		}
		if cols.SourceRow[i] < -1 || cols.SourceRow[i] > math.MaxInt32 {
			return fmt.Errorf("snapshot: row %d has source row %d", i, cols.SourceRow[i])
		}
	}
	ix, err := query.NewIndex(pub)
	if err != nil {
		return fmt.Errorf("snapshot: building serving index: %w", err)
	}
	parts := ix.Parts()
	payloads := v2Payloads(cols, parts)

	// Metadata body: shared prefix, then the v2 tail.
	e := &enc{}
	if err := encodePubMeta(e, pub); err != nil {
		return err
	}
	encodeGuarantee(e, g)
	if err := encodeChain(e, chain); err != nil {
		return err
	}
	e.u64(uint64(cols.N))
	e.i32(parts.Root)

	// Lay the blocks out before encoding the directory (its size is fixed, so
	// offsets don't depend on their own encoding).
	metaLen := len(e.b) + 4 + len(payloads)*dirEntryLen
	off := alignUp(headerLen + metaLen)
	dirs := make([]blockDir, len(payloads))
	for i, p := range payloads {
		dirs[i] = blockDir{off: uint64(off), n: uint64(len(p)), crc: crc32.Checksum(p, castagnoli)}
		off = alignUp(off + prefixLen + len(p))
	}
	e.u32(uint32(len(dirs)))
	for _, dd := range dirs {
		e.u64(dd.off)
		e.u64(dd.n)
		e.u32(dd.crc)
	}

	if _, err := w.Write(makeHeader(Version, e.b)); err != nil {
		return fmt.Errorf("snapshot: writing header: %w", err)
	}
	if _, err := w.Write(e.b); err != nil {
		return fmt.Errorf("snapshot: writing metadata: %w", err)
	}
	pos := headerLen + len(e.b)
	zero := make([]byte, pageAlign)
	var pre [prefixLen]byte
	for i, p := range payloads {
		if gap := int(dirs[i].off) - pos; gap > 0 {
			if _, err := w.Write(zero[:gap]); err != nil {
				return fmt.Errorf("snapshot: writing padding: %w", err)
			}
			pos += gap
		}
		binary.LittleEndian.PutUint64(pre[:], dirs[i].n)
		if _, err := w.Write(pre[:]); err != nil {
			return fmt.Errorf("snapshot: writing %s block: %w", v2Blocks[i].name, err)
		}
		if _, err := w.Write(p); err != nil {
			return fmt.Errorf("snapshot: writing %s block: %w", v2Blocks[i].name, err)
		}
		pos += prefixLen + len(p)
	}
	return nil
}

// decodeV2Meta decodes the v2 tail of the metadata body (after the shared
// prefix): row count, index root, block directory. The directory is checked
// for shape here — count, ascending page-aligned offsets, element-width
// divisibility — so every later consumer can trust its geometry.
func decodeV2Meta(d *dec, metaLen int) (rowN int, root int32, dirs []blockDir, err error) {
	n := d.u64()
	root = d.i32()
	cnt := int(d.u32())
	if d.err != nil {
		return 0, 0, nil, d.err
	}
	if n > math.MaxInt32 {
		return 0, 0, nil, fmt.Errorf("snapshot: row count %d exceeds the format limit", n)
	}
	if cnt != len(v2Blocks) {
		return 0, 0, nil, fmt.Errorf("snapshot: directory lists %d blocks, format has %d", cnt, len(v2Blocks))
	}
	dirs = make([]blockDir, cnt)
	end := headerLen + metaLen
	for i := range dirs {
		dirs[i] = blockDir{off: d.u64(), n: d.u64(), crc: d.u32()}
		if d.err != nil {
			return 0, 0, nil, d.err
		}
		b := v2Blocks[i]
		if dirs[i].off%pageAlign != 0 {
			return 0, 0, nil, fmt.Errorf("snapshot: %s block offset %d not page-aligned", b.name, dirs[i].off)
		}
		if dirs[i].off < uint64(alignUp(end)) {
			return 0, 0, nil, fmt.Errorf("snapshot: %s block offset %d overlaps the previous section", b.name, dirs[i].off)
		}
		if dirs[i].n > maxBodyLen {
			return 0, 0, nil, fmt.Errorf("snapshot: %s block length %d exceeds the %d-byte limit", b.name, dirs[i].n, maxBodyLen)
		}
		if dirs[i].n%uint64(b.elem) != 0 {
			return 0, 0, nil, fmt.Errorf("snapshot: %s block length %d not a multiple of %d", b.name, dirs[i].n, b.elem)
		}
		end = int(dirs[i].off) + prefixLen + int(dirs[i].n)
	}
	if d.off != len(d.b) {
		return 0, 0, nil, fmt.Errorf("snapshot: %d trailing bytes after the block directory", len(d.b)-d.off)
	}
	return int(n), root, dirs, nil
}

// verifyV2Blocks checks the block region bytes against the directory: zero
// padding between blocks, length prefixes matching the directory, payload
// CRCs, and nothing after the last block. data starts at file offset base
// (the first byte after the metadata). Returns the payload slices
// (subslices of data, in v2Blocks order).
func verifyV2Blocks(data []byte, base int, dirs []blockDir) ([][]byte, error) {
	payloads := make([][]byte, len(dirs))
	pos := base
	for i, dd := range dirs {
		b := v2Blocks[i]
		end := int(dd.off) + prefixLen + int(dd.n)
		if end > base+len(data) {
			return nil, fmt.Errorf("snapshot: %s block extends past the file end (truncated file?)", b.name)
		}
		for _, z := range data[pos-base : int(dd.off)-base] {
			if z != 0 {
				return nil, fmt.Errorf("snapshot: nonzero padding before the %s block", b.name)
			}
		}
		pre := binary.LittleEndian.Uint64(data[int(dd.off)-base:])
		if pre != dd.n {
			return nil, fmt.Errorf("snapshot: %s block length prefix %d disagrees with directory %d", b.name, pre, dd.n)
		}
		p := data[int(dd.off)+prefixLen-base : end-base]
		if crc32.Checksum(p, castagnoli) != dd.crc {
			return nil, fmt.Errorf("snapshot: %s block checksum mismatch (corrupted file)", b.name)
		}
		payloads[i] = p
		pos = end
	}
	if pos != base+len(data) {
		return nil, fmt.Errorf("snapshot: %d trailing bytes after the %s block",
			base+len(data)-pos, v2Blocks[len(v2Blocks)-1].name)
	}
	return payloads, nil
}

// v2Rows assembles the publication from the decoded metadata shell and the
// five row-column payloads, re-validating everything the row-major decoder
// would: G and source-row ranges, then the full publication validator.
func v2Rows(pub *pg.Published, rowN int, payloads [][]byte) (*pg.Published, error) {
	cols := &pg.RowColumns{
		N:         rowN,
		D:         pub.Schema.D(),
		Lo:        bytesToI32(payloads[0]),
		Hi:        bytesToI32(payloads[1]),
		Value:     bytesToI32(payloads[2]),
		G:         bytesToI64(payloads[3]),
		SourceRow: bytesToI64(payloads[4]),
	}
	out, err := pg.FromColumns(*pub, cols)
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	for i := 0; i < cols.N; i++ {
		if cols.G[i] < 1 || cols.G[i] > math.MaxInt32 {
			return nil, fmt.Errorf("snapshot: row %d has G = %d", i, cols.G[i])
		}
		if cols.SourceRow[i] < -1 || cols.SourceRow[i] > math.MaxInt32 {
			return nil, fmt.Errorf("snapshot: row %d has source row %d", i, cols.SourceRow[i])
		}
	}
	if cols.N > 0 {
		if err := out.Validate(); err != nil {
			return nil, fmt.Errorf("snapshot: loaded publication invalid: %w", err)
		}
	}
	return out, nil
}

// v2IndexParts wraps the 16 index payloads as query.IndexParts.
func v2IndexParts(p float64, root int32, payloads [][]byte) query.IndexParts {
	return query.IndexParts{
		P:         p,
		Root:      root,
		EntLo:     bytesToI32(payloads[5]),
		EntHi:     bytesToI32(payloads[6]),
		EntG:      bytesToF64(payloads[7]),
		ValOff:    bytesToI32(payloads[8]),
		ValCode:   bytesToI32(payloads[9]),
		ValW:      bytesToF64(payloads[10]),
		NodeLo:    bytesToI32(payloads[11]),
		NodeHi:    bytesToI32(payloads[12]),
		NodeG:     bytesToF64(payloads[13]),
		NodeHist:  bytesToF64(payloads[14]),
		NodePref:  bytesToF64(payloads[15]),
		NodeLeft:  bytesToI32(payloads[16]),
		NodeRight: bytesToI32(payloads[17]),
		NodeELo:   bytesToI32(payloads[18]),
		NodeEHi:   bytesToI32(payloads[19]),
		GridSat:   bytesToF64(payloads[20]),
	}
}

// readV2 finishes Read for a version-2/3 stream: meta is the already
// CRC-verified metadata body, r is positioned at the first byte after it,
// and hasChain says whether the version carries the release-chain block.
// Every block CRC, every length prefix, all padding and the exact file end
// are verified; the index blocks are additionally checked structurally (by
// reconstructing an index from them), though the streaming Read returns only
// the publication — Write rebuilds the index deterministically, which is
// what keeps save(load(save)) byte-identical.
func readV2(r io.Reader, meta []byte, hasChain bool) (*pg.Published, *pg.GuaranteeMetadata, *ChainMetadata, error) {
	d := &dec{b: meta}
	pub, err := decodePubMeta(d)
	if err != nil {
		return nil, nil, nil, err
	}
	gm, err := decodeGuarantee(d)
	if err != nil {
		return nil, nil, nil, err
	}
	var chain *ChainMetadata
	if hasChain {
		if chain, err = decodeChain(d); err != nil {
			return nil, nil, nil, err
		}
	}
	rowN, root, dirs, err := decodeV2Meta(d, len(meta))
	if err != nil {
		return nil, nil, nil, err
	}
	// Consume exactly the bytes the directory describes: like the v1 reader,
	// Read leaves anything after the snapshot unread, so it can be layered
	// over concatenated streams. (OpenMapped, which sees the whole file,
	// additionally requires the file to end at the last block.)
	last := dirs[len(dirs)-1]
	base := headerLen + len(meta)
	data := make([]byte, int(last.off)+prefixLen+int(last.n)-base)
	if _, err := io.ReadFull(r, data); err != nil {
		return nil, nil, nil, fmt.Errorf("snapshot: reading column blocks (truncated file?): %w", err)
	}
	payloads, err := verifyV2Blocks(data, base, dirs)
	if err != nil {
		return nil, nil, nil, err
	}
	out, err := v2Rows(pub, rowN, payloads)
	if err != nil {
		return nil, nil, nil, err
	}
	if _, err := query.NewIndexFromParts(out.Schema, v2IndexParts(out.P, root, payloads)); err != nil {
		return nil, nil, nil, fmt.Errorf("snapshot: loaded serving index invalid: %w", err)
	}
	return out, gm, chain, nil
}
