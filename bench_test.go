package pgpub

import (
	"math/rand"
	"runtime"
	"testing"

	"pgpub/internal/anatomy"
	"pgpub/internal/attack"
	"pgpub/internal/dataset"
	"pgpub/internal/experiments"
	"pgpub/internal/generalize"
	"pgpub/internal/hierarchy"
	"pgpub/internal/mining"
	"pgpub/internal/minv"
	"pgpub/internal/obs"
	"pgpub/internal/perturb"
	"pgpub/internal/pg"
	"pgpub/internal/privacy"
	"pgpub/internal/query"
	"pgpub/internal/repub"
	"pgpub/internal/sal"
)

// This file holds one benchmark per table and figure of the paper's
// evaluation (Section VII) — the harness that regenerates each artifact —
// plus micro-benchmarks of the pipeline stages. Run everything with
//
//	go test -bench=. -benchmem
//
// and see cmd/pgbench for the human-readable renderings.

// benchSAL memoizes the benchmark microdata across benchmarks.
var benchSAL *dataset.Table

func benchData(b *testing.B, n int) *dataset.Table {
	b.Helper()
	if benchSAL == nil || benchSAL.Len() != n {
		d, err := sal.Generate(n, 42)
		if err != nil {
			b.Fatal(err)
		}
		benchSAL = d
	}
	return benchSAL
}

// BenchmarkTableIIIa regenerates Table III(a): guarantee bounds vs k.
func BenchmarkTableIIIa(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.TableIIIa()
		if err != nil || len(rows) != 5 {
			b.Fatalf("TableIIIa: %v", err)
		}
	}
}

// BenchmarkTableIIIb regenerates Table III(b): guarantee bounds vs p.
func BenchmarkTableIIIb(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.TableIIIb()
		if err != nil || len(rows) != 7 {
			b.Fatalf("TableIIIb: %v", err)
		}
	}
}

// BenchmarkFigure2 regenerates one Figure-2 point (m=2, p=0.3, k=6) at
// benchmark scale; cmd/pgbench runs the full sweeps.
func BenchmarkFigure2(b *testing.B) {
	d := benchData(b, 20000)
	classOf, err := sal.Categorizer(2)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pub, err := pg.Publish(d, sal.Hierarchies(d.Schema), pg.Config{K: 6, P: 0.3, Rng: rng})
		if err != nil {
			b.Fatal(err)
		}
		clf, err := mining.TrainPG(pub, classOf, 2, mining.Config{})
		if err != nil {
			b.Fatal(err)
		}
		if acc := mining.Accuracy(clf.Predict, d, classOf); acc <= 0 || acc >= 1 {
			b.Fatalf("accuracy = %v", acc)
		}
	}
}

// BenchmarkFigure3 regenerates one Figure-3 point (m=3, k=6, p=0.45).
func BenchmarkFigure3(b *testing.B) {
	d := benchData(b, 20000)
	classOf, err := sal.Categorizer(3)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pub, err := pg.Publish(d, sal.Hierarchies(d.Schema), pg.Config{K: 6, P: 0.45, Rng: rng})
		if err != nil {
			b.Fatal(err)
		}
		clf, err := mining.TrainPG(pub, classOf, 3, mining.Config{})
		if err != nil {
			b.Fatal(err)
		}
		_ = mining.Accuracy(clf.Predict, d, classOf)
	}
}

// BenchmarkBreachValidation regenerates the Extra-E1 Monte-Carlo check at a
// reduced trial count.
func BenchmarkBreachValidation(b *testing.B) {
	d := dataset.Hospital()
	hiers := []*Hierarchy{
		mustInterval(b, d.Schema.QI[0].Size(), 5, 20),
		mustFlat(b, d.Schema.QI[1].Size()),
		mustInterval(b, d.Schema.QI[2].Size(), 5, 20),
	}
	rng := rand.New(rand.NewSource(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := attack.MonteCarlo(d, dataset.HospitalVoterQI(), hiers, attack.MonteCarloConfig{
			PG:              pg.Config{K: 2, P: 0.3},
			Trials:          50,
			Lambda:          0.1,
			CorruptFraction: 1,
			Rng:             rng,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.BreachesRho != 0 || res.BreachesDelta != 0 {
			b.Fatal("breach observed")
		}
	}
}

func mustInterval(b *testing.B, n int, widths ...int) *Hierarchy {
	b.Helper()
	h, err := NewIntervalHierarchy(n, widths...)
	if err != nil {
		b.Fatal(err)
	}
	return h
}

func mustFlat(b *testing.B, n int) *Hierarchy {
	b.Helper()
	h, err := NewFlatHierarchy(n)
	if err != nil {
		b.Fatal(err)
	}
	return h
}

// --- Pipeline micro-benchmarks ---

// BenchmarkPhase1Perturb measures Phase 1 on 20k tuples.
func BenchmarkPhase1Perturb(b *testing.B) {
	d := benchData(b, 20000)
	pb, err := perturb.NewPerturber(0.3, d.Schema.SensitiveDomain())
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pb.Table(d, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPhase2KD measures kd-cell partitioning on 20k tuples.
func BenchmarkPhase2KD(b *testing.B) {
	d := benchData(b, 20000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := generalize.KDPartition(d, 6); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPhase2TDS measures top-down specialization on 20k tuples.
func BenchmarkPhase2TDS(b *testing.B) {
	d := benchData(b, 20000)
	hiers := sal.Hierarchies(d.Schema)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := generalize.TDS(d, hiers, generalize.TDSConfig{K: 6}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPublish measures the full three-phase pipeline on 20k tuples.
func BenchmarkPublish(b *testing.B) {
	d := benchData(b, 20000)
	hiers := sal.Hierarchies(d.Schema)
	rng := rand.New(rand.NewSource(5))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pg.Publish(d, hiers, pg.Config{K: 6, P: 0.3, Rng: rng}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPublishParallel is BenchmarkPublish with the pipeline's worker
// pool at GOMAXPROCS. Same seed ⇒ byte-identical output to the sequential
// run (see TestPublishDeterministicAcrossWorkers); compare the two
// benchmarks for the parallel speedup at 20k rows.
func BenchmarkPublishParallel(b *testing.B) {
	d := benchData(b, 20000)
	hiers := sal.Hierarchies(d.Schema)
	rng := rand.New(rand.NewSource(5))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pg.Publish(d, hiers, pg.Config{K: 6, P: 0.3, Rng: rng, Workers: runtime.GOMAXPROCS(0)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPublishParallelMetricsOn is BenchmarkPublishParallel with a live
// obs.Registry wired into the pipeline. The pair is the instrumentation
// overhead check of docs/OBSERVABILITY.md: instrumentation sits at phase
// boundaries and per-shard flushes — never in per-row loops — so the two
// benchmarks must stay within a couple percent of each other, and
// BenchmarkPublishParallel itself must not regress against its
// pre-instrumentation numbers (the disabled path costs one nil check per
// phase).
func BenchmarkPublishParallelMetricsOn(b *testing.B) {
	d := benchData(b, 20000)
	hiers := sal.Hierarchies(d.Schema)
	rng := rand.New(rand.NewSource(5))
	reg := obs.NewRegistry()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pg.Publish(d, hiers, pg.Config{K: 6, P: 0.3, Rng: rng, Workers: runtime.GOMAXPROCS(0), Metrics: reg}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPublish100k and BenchmarkPublishParallel100k run the acceptance
// comparison of EXPERIMENTS.md §Parallel pipeline: the full pipeline at
// census-bench scale (100k SAL rows), sequential vs. GOMAXPROCS workers.
func BenchmarkPublish100k(b *testing.B) {
	benchPublishN(b, 100000, 1)
}

func BenchmarkPublishParallel100k(b *testing.B) {
	benchPublishN(b, 100000, runtime.GOMAXPROCS(0))
}

func benchPublishN(b *testing.B, n, workers int) {
	b.Helper()
	d := benchData(b, n)
	hiers := sal.Hierarchies(d.Schema)
	rng := rand.New(rand.NewSource(5))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pg.Publish(d, hiers, pg.Config{K: 6, P: 0.3, Rng: rng, Workers: workers}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLinkAttack measures one corruption-aided linking attack against
// the hospital scenario.
func BenchmarkLinkAttack(b *testing.B) {
	d := dataset.Hospital()
	hiers := []*Hierarchy{
		mustInterval(b, d.Schema.QI[0].Size(), 5, 20),
		mustFlat(b, d.Schema.QI[1].Size()),
		mustInterval(b, d.Schema.QI[2].Size(), 5, 20),
	}
	pub, err := pg.Publish(d, hiers, pg.Config{K: 2, P: 0.3, Seed: 6})
	if err != nil {
		b.Fatal(err)
	}
	ext, err := attack.NewExternal(d, dataset.HospitalVoterQI())
	if err != nil {
		b.Fatal(err)
	}
	domain := d.Schema.SensitiveDomain()
	q, err := privacy.PredicateOf(domain, 0, 1)
	if err != nil {
		b.Fatal(err)
	}
	adv := attack.Adversary{Background: privacy.Uniform(domain), Corrupted: map[int]bool{0: true, 4: true}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := attack.LinkAttack(pub, ext, 3, adv, q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrainPG measures mining a 20k-tuple publication.
func BenchmarkTrainPG(b *testing.B) {
	d := benchData(b, 20000)
	classOf, err := sal.Categorizer(2)
	if err != nil {
		b.Fatal(err)
	}
	pub, err := pg.Publish(d, sal.Hierarchies(d.Schema), pg.Config{K: 6, P: 0.3, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mining.TrainPG(pub, classOf, 2, mining.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSALGenerate measures the synthetic census generator.
func BenchmarkSALGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := sal.Generate(20000, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryEstimate measures COUNT estimation over a 20k publication
// (Extra E5's core operation).
func BenchmarkQueryEstimate(b *testing.B) {
	d := benchData(b, 20000)
	pub, err := pg.Publish(d, sal.Hierarchies(d.Schema), pg.Config{K: 6, P: 0.3, Seed: 8})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	qs, err := query.Workload(d.Schema, query.WorkloadConfig{
		Queries: 16, QIFraction: 0.5, RestrictAttrs: 2, SensitiveFraction: 0.4, Rng: rng,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := query.Estimate(pub, qs[i%len(qs)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRepubCompose measures multi-release posterior composition
// (Extra E6's core operation).
func BenchmarkRepubCompose(b *testing.B) {
	prior := privacy.Uniform(50)
	obs := make([]repub.Observation, 8)
	for t := range obs {
		obs[t] = repub.Observation{Y: int32(t % 50), H: 0.4, P: 0.3}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := repub.ComposePosterior(prior, obs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPhase2KDParallel measures the parallel kd partitioner on the
// same input as BenchmarkPhase2KD.
func BenchmarkPhase2KDParallel(b *testing.B) {
	d := benchData(b, 20000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := generalize.KDPartitionParallel(d, 6, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIncognitoHospital measures the pruned full-domain lattice search
// on the tiny hospital example.
func BenchmarkIncognitoHospital(b *testing.B) {
	d := dataset.Hospital()
	hiers := []*Hierarchy{
		mustInterval(b, d.Schema.QI[0].Size(), 5, 20),
		mustFlat(b, d.Schema.QI[1].Size()),
		mustInterval(b, d.Schema.QI[2].Size(), 5, 20),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := generalize.Incognito(d, hiers, generalize.IncognitoConfig{K: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Grouping-engine benchmarks (EXPERIMENTS.md §Grouping engine) ---
//
// The three benchmarks below are the acceptance surface of the incremental
// grouping engine: QI-grouping, TDS, and Incognito at 100k rows. Compare
// against the numbers recorded in EXPERIMENTS.md / BENCH_pg.json.

// BenchmarkGroupBy measures a full-table QI-grouping of 100k SAL rows under
// mid-level cuts (the finest grouping the engine's packed-key path serves).
func BenchmarkGroupBy(b *testing.B) {
	d := benchData(b, 100000)
	hiers := sal.Hierarchies(d.Schema)
	cuts := make([]*hierarchy.Cut, len(hiers))
	for j, h := range hiers {
		c, err := hierarchy.LevelCut(h, (h.Height()+1)/2)
		if err != nil {
			b.Fatal(err)
		}
		cuts[j] = c
	}
	rec, err := generalize.NewRecoding(d.Schema, hiers, cuts)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if g := generalize.GroupBy(d, rec); g.Len() == 0 {
			b.Fatal("no groups")
		}
	}
}

// BenchmarkTDS measures top-down specialization on 100k SAL rows (the Phase-2
// workload the incremental refinement engine targets).
func BenchmarkTDS(b *testing.B) {
	d := benchData(b, 100000)
	hiers := sal.Hierarchies(d.Schema)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := generalize.TDS(d, hiers, generalize.TDSConfig{K: 6}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIncognito measures the lattice search on a 100k-row synthetic
// table over three QI attributes of mixed hierarchy shape — large enough that
// per-node grouping cost dominates, small enough that the lattice stays
// enumerable (Incognito on the full 8-attribute SAL lattice is intractable by
// design; full-domain recoding is used on low-dimensional QI sets).
func BenchmarkIncognito(b *testing.B) {
	d, hiers := benchIncognitoData(b, 100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := generalize.Incognito(d, hiers, generalize.IncognitoConfig{K: 6}); err != nil {
			b.Fatal(err)
		}
	}
}

func benchIncognitoData(b *testing.B, n int) (*dataset.Table, []*Hierarchy) {
	b.Helper()
	s, err := dataset.NewSchema(
		[]*dataset.Attribute{
			mustIntAttr(b, "A", 16),
			mustIntAttr(b, "B", 8),
			mustIntAttr(b, "C", 8),
		},
		mustIntAttr(b, "S", 4),
	)
	if err != nil {
		b.Fatal(err)
	}
	t := dataset.NewTable(s)
	rng := rand.New(rand.NewSource(20080402))
	skew := func(size int) int32 {
		// Exponentially skewed codes: rare tail values keep the lattice
		// bottom from satisfying, so the search actually climbs.
		v := int(rng.ExpFloat64() * float64(size) / 5)
		if v >= size {
			v = size - 1
		}
		return int32(v)
	}
	for i := 0; i < n; i++ {
		t.MustAppend([]int32{skew(16), skew(8), skew(8), int32(rng.Intn(4))})
	}
	hiers := []*Hierarchy{
		mustInterval(b, 16, 2, 4, 8),
		mustInterval(b, 8, 2, 4),
		hierarchy.MustBalanced(8, 2),
	}
	return t, hiers
}

func mustIntAttr(b *testing.B, name string, size int) *dataset.Attribute {
	b.Helper()
	a, err := dataset.NewIntAttribute(name, 0, size-1)
	if err != nil {
		b.Fatal(err)
	}
	return a
}

// BenchmarkAnatomize measures the Anatomy baseline on 20k tuples.
func BenchmarkAnatomize(b *testing.B) {
	d := benchData(b, 20000)
	rng := rand.New(rand.NewSource(11))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := anatomy.Anatomize(d, 4, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMInvariantRelease measures one m-invariant re-publication round
// over 20k tuples with full survivorship.
func BenchmarkMInvariantRelease(b *testing.B) {
	d := benchData(b, 20000)
	rng := rand.New(rand.NewSource(12))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := minv.NewState(4)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := st.Publish(d, rng); err != nil {
			b.Fatal(err)
		}
		if _, err := st.Publish(d, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrainNBPG measures the naive-Bayes miner on a 20k publication.
func BenchmarkTrainNBPG(b *testing.B) {
	d := benchData(b, 20000)
	classOf, err := sal.Categorizer(2)
	if err != nil {
		b.Fatal(err)
	}
	pub, err := pg.Publish(d, sal.Hierarchies(d.Schema), pg.Config{K: 6, P: 0.3, Seed: 13})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mining.TrainNBPG(pub, classOf, 2, mining.NBConfig{}); err != nil {
			b.Fatal(err)
		}
	}
}
