// Command pgpublish anonymizes microdata with perturbed generalization and
// writes D* as CSV. The input is either the built-in hospital example of the
// paper's Table I, a SAL CSV produced by salgen, or a freshly generated SAL
// sample. The retention probability can be given directly (-p) or solved
// from a target guarantee level (-rho2 / -delta-target), mirroring Section VI's
// parameter-selection rule.
//
// Usage:
//
//	pgpublish -dataset hospital -s 0.5 -p 0.25
//	pgpublish -dataset sal -n 100000 -k 6 -rho2 0.45
//	pgpublish -in sal.csv -k 6 -delta-target 0.24 -out anonymized.csv
//	pgpublish -dataset sal -n 50000 -k 6 -p 0.3 -snapshot release.pgsnap
//	pgpublish -dataset sal -n 100000 -k 6 -p 0.3 -shards 4 \
//	    -snapshot release.pgsnap -manifest release.pgman
//	pgpublish -in sal.csv -k 6 -p 0.3 -seed 42 \
//	    -delta d1.csv -base r0.pgsnap -snapshot r1.pgsnap
//
// With -shards S the microdata is partitioned round-robin into S
// deterministic shards, each published independently (per-shard seeds split
// from -seed, so shard bytes are stable for any worker count), saved to
// release-00.pgsnap ... release-0{S-1}.pgsnap, and described by a
// checksummed manifest (-manifest) that pgserve -coordinator and pgquery
// -manifest consume. The CSV and -meta outputs then describe the union.
//
// With -delta the command publishes the next release of a re-publication
// chain: the comma-separated delta files are replayed in order over the
// base microdata (same -in/-dataset and -seed as release 0 — release bytes
// are a pure function of base, delta sequence and parameters), the last
// delta defines the new release, and its snapshot chains onto -base via a
// release-chain block carrying the parent's CRC and the cross-release
// guarantee accounting. A plain -snapshot publish stamps release 0 of a
// chain. docs/REPUBLICATION.md specifies the delta format and the chain.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"pgpub/internal/dataset"
	"pgpub/internal/hierarchy"
	"pgpub/internal/obs"
	"pgpub/internal/pg"
	"pgpub/internal/privacy"
	"pgpub/internal/repub"
	"pgpub/internal/sal"
	"pgpub/internal/shard"
	"pgpub/internal/snapshot"
)

func main() {
	ds := flag.String("dataset", "sal", "built-in dataset: sal|hospital (ignored with -in)")
	in := flag.String("in", "", "input CSV with the SAL schema (from salgen)")
	n := flag.Int("n", 100000, "generated SAL cardinality (without -in)")
	seed := flag.Int64("seed", 42, "random seed")
	k := flag.Int("k", 0, "QI-group size floor (alternative to -s)")
	s := flag.Float64("s", 0, "cardinality parameter in (0,1]: |D*| <= |D|*s")
	p := flag.Float64("p", -1, "retention probability; omit to solve from -rho2/-delta-target")
	rho1 := flag.Float64("rho1", 0.2, "prior-confidence bound for -rho2 solving")
	rho2 := flag.Float64("rho2", 0, "target rho2 level (solves max p, Theorem 2)")
	deltaTarget := flag.Float64("delta-target", 0, "target delta-growth level (solves max p, Theorem 3)")
	lambda := flag.Float64("lambda", 0.1, "background-knowledge skew bound")
	alg := flag.String("algorithm", "kd", "phase-2 algorithm: kd|tds|full-domain")
	out := flag.String("out", "", "output file (default stdout)")
	meta := flag.String("meta", "", "also write release metadata JSON to this file")
	snap := flag.String("snapshot", "", "also write a binary publication snapshot (.pgsnap) for pgserve/pgquery")
	base := flag.String("base", "", "parent release snapshot (.pgsnap) the new release chains onto (with -delta)")
	deltas := flag.String("delta", "", "comma-separated delta files replayed in order over the base microdata; the last defines the new release (requires -base and -snapshot)")
	shards := flag.Int("shards", 0, "partition into this many deterministic shards, one snapshot each (requires -snapshot as the base name and -manifest)")
	manifestPath := flag.String("manifest", "", "write the shard manifest (.pgman) here (with -shards)")
	workers := flag.Int("workers", 0, "pipeline worker goroutines (0 = GOMAXPROCS); output is identical for any value")
	metrics := flag.Bool("metrics", false, "instrument the pipeline and print the counter/phase report to stderr")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /healthz and /debug/pprof on this address (e.g. :6060)")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "pgpublish: %v\n", err)
		os.Exit(1)
	}

	var reg *obs.Registry
	if *metrics || *debugAddr != "" {
		reg = obs.NewRegistry()
		if err := reg.PublishExpvar("pgpub"); err != nil {
			fmt.Fprintf(os.Stderr, "pgpublish: %v\n", err)
		}
	}
	if *debugAddr != "" {
		srv, err := reg.Serve(*debugAddr)
		if err != nil {
			fail(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "pgpublish: debug server on http://%s (/metrics, /healthz, /debug/pprof/)\n", srv.Addr)
	}
	if *metrics {
		defer reg.WriteText(os.Stderr)
	}

	var (
		d     *dataset.Table
		hiers []*hierarchy.Hierarchy
		err   error
	)
	switch {
	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			fail(err)
		}
		d, err = dataset.ReadCSV(sal.Schema(), bufio.NewReader(f))
		f.Close()
		if err != nil {
			fail(err)
		}
		hiers = sal.Hierarchies(d.Schema)
	case *ds == "hospital":
		d = dataset.Hospital()
		hiers = []*hierarchy.Hierarchy{
			hierarchy.MustInterval(d.Schema.QI[0].Size(), 5, 20),
			hierarchy.MustFlat(d.Schema.QI[1].Size()),
			hierarchy.MustInterval(d.Schema.QI[2].Size(), 5, 20),
		}
	case *ds == "sal":
		d, err = sal.Generate(*n, *seed)
		if err != nil {
			fail(err)
		}
		hiers = sal.Hierarchies(d.Schema)
	default:
		fail(fmt.Errorf("unknown dataset %q", *ds))
	}

	// Resolve k to solve guarantees before publication.
	kk := *k
	if kk == 0 {
		if *s <= 0 || *s > 1 {
			fail(fmt.Errorf("set -k or -s in (0,1]"))
		}
		kk = int(1 / *s)
		if float64(kk) < 1 / *s {
			kk++
		}
	}

	retention := *p
	domain := d.Schema.SensitiveDomain()
	if retention < 0 {
		switch {
		case *rho2 > 0 && *deltaTarget > 0:
			pr, err := privacy.MaxRetentionRho12(*lambda, *rho1, *rho2, kk, domain)
			if err != nil {
				fail(err)
			}
			pd, err := privacy.MaxRetentionDelta(*lambda, *deltaTarget, kk, domain)
			if err != nil {
				fail(err)
			}
			retention = pr
			if pd < pr {
				retention = pd
			}
		case *rho2 > 0:
			retention, err = privacy.MaxRetentionRho12(*lambda, *rho1, *rho2, kk, domain)
			if err != nil {
				fail(err)
			}
		case *deltaTarget > 0:
			retention, err = privacy.MaxRetentionDelta(*lambda, *deltaTarget, kk, domain)
			if err != nil {
				fail(err)
			}
		default:
			fail(fmt.Errorf("set -p, -rho2 or -delta-target"))
		}
		fmt.Fprintf(os.Stderr, "pgpublish: solved retention probability p = %.4f\n", retention)
	}

	var algorithm pg.Algorithm
	switch *alg {
	case "kd":
		algorithm = pg.KD
	case "tds":
		algorithm = pg.TDS
	case "full-domain":
		algorithm = pg.FullDomain
	default:
		fail(fmt.Errorf("unknown algorithm %q", *alg))
	}

	cfg := pg.Config{
		K: kk, P: retention, Algorithm: algorithm, Seed: *seed, Workers: *workers,
		Metrics: reg,
	}
	var (
		pub   *pg.Published
		pubs  []*pg.Published
		chain *snapshot.ChainMetadata
	)
	switch {
	case *deltas != "":
		// Incremental re-publication: replay every delta in order over the
		// base microdata (release bytes are a pure function of the base, the
		// delta sequence and the parameters, so the chain state rebuilds
		// deterministically), then chain the final release onto -base.
		if *shards > 0 {
			fail(fmt.Errorf("-delta and -shards are mutually exclusive"))
		}
		if *base == "" || *snap == "" {
			fail(fmt.Errorf("-delta requires -base (the parent release) and -snapshot (the new release)"))
		}
		files := strings.Split(*deltas, ",")
		basePub, _, baseChain, err := snapshot.LoadRelease(*base)
		if err != nil {
			fail(err)
		}
		if baseChain == nil {
			fail(fmt.Errorf("%s has no release-chain block; re-publish it with a current pgpublish -snapshot to start a chain", *base))
		}
		if baseChain.Release != len(files)-1 {
			fail(fmt.Errorf("%s is release %d; %d delta files publish release %d, whose parent is release %d",
				*base, baseChain.Release, len(files), len(files), len(files)-1))
		}
		parentCRC, err := snapshot.HeaderCRC(*base)
		if err != nil {
			fail(err)
		}
		ch := pg.NewChain(d, hiers)
		if pub, err = pg.Republish(ch, pg.Delta{}, cfg); err != nil {
			fail(err)
		}
		var last pg.Delta
		for i, path := range files {
			dl, err := pg.LoadDelta(d.Schema, strings.TrimSpace(path))
			if err != nil {
				fail(fmt.Errorf("delta %d: %w", i+1, err))
			}
			if pub, err = pg.Republish(ch, dl, cfg); err != nil {
				fail(fmt.Errorf("release %d: %w", i+1, err))
			}
			last = dl
		}
		if basePub.P != pub.P || basePub.K != pub.K || basePub.Algorithm != pub.Algorithm {
			fail(fmt.Errorf("parameters changed across the chain: %s is (%v, k=%d, p=%.4f), this release is (%v, k=%d, p=%.4f); guarantees do not compose across them",
				*base, basePub.Algorithm, basePub.K, basePub.P, pub.Algorithm, pub.K, pub.P))
		}
		inserts := 0
		if last.Inserts != nil {
			inserts = last.Inserts.Len()
		}
		chain, err = repub.ChainMetadataFor(len(files), parentCRC, inserts, len(last.Deletes),
			ch.Table().Len(), pub.P, *lambda, pub.K, domain)
		if err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "pgpublish: release %d chains onto %s (parent CRC %08x)\n",
			chain.Release, *base, parentCRC)
	case *shards > 0:
		if *snap == "" || *manifestPath == "" {
			fail(fmt.Errorf("-shards requires -snapshot (the per-shard base name) and -manifest"))
		}
		pubs, err = pg.PublishSharded(d, hiers, cfg, *shards)
		if err != nil {
			fail(err)
		}
		// The merged view backs the CSV/metadata outputs; it is not itself a
		// PG release (boxes overlap across shards), which is why the sharded
		// path never saves it as a snapshot.
		pub, err = pg.Merge(pubs)
		if err != nil {
			fail(err)
		}
	default:
		if *manifestPath != "" {
			fail(fmt.Errorf("-manifest needs -shards"))
		}
		if *base != "" {
			fail(fmt.Errorf("-base needs -delta"))
		}
		pub, err = pg.Publish(d, hiers, cfg)
		if err != nil {
			fail(err)
		}
		// A plain publish is release 0 of a (potential) chain: stamping the
		// chain block here is what lets a later -base/-delta invocation, and
		// pgserve's hot-swap, chain onto this snapshot.
		chain, err = repub.ChainMetadataFor(0, 0, 0, 0, d.Len(), pub.P, *lambda, pub.K, domain)
		if err != nil {
			fail(err)
		}
	}
	r2, dl, err := pub.Guarantees(*lambda, *rho1)
	if err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr,
		"pgpublish: published %d of %d tuples (k=%d, p=%.4f); guarantees: %.2f-to-%.2f, %.2f-growth\n",
		pub.Len(), d.Len(), pub.K, pub.P, *rho1, r2, dl)

	if *meta != "" {
		m, err := pub.Metadata(*lambda, *rho1)
		if err != nil {
			fail(err)
		}
		mf, err := os.Create(*meta)
		if err != nil {
			fail(err)
		}
		if err := m.Write(mf); err != nil {
			mf.Close()
			fail(err)
		}
		if err := mf.Close(); err != nil {
			fail(err)
		}
	}

	if *snap != "" {
		g := &pg.GuaranteeMetadata{Lambda: *lambda, Rho1: *rho1, Rho2: r2, Delta: dl}
		if *shards > 0 {
			if _, err := shard.WriteRelease(*manifestPath, *snap, pubs, g, *seed, d.Len()); err != nil {
				fail(err)
			}
			fmt.Fprintf(os.Stderr, "pgpublish: %d shard snapshots (%s ... %s) and manifest %s written\n",
				len(pubs), shard.SnapshotPath(*snap, 0), shard.SnapshotPath(*snap, len(pubs)-1), *manifestPath)
		} else {
			if err := snapshot.SaveRelease(*snap, pub, g, chain); err != nil {
				fail(err)
			}
			fmt.Fprintf(os.Stderr, "pgpublish: snapshot written to %s (release %d)\n", *snap, chain.Release)
		}
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriter(w)
	if err := pub.WriteCSV(bw); err != nil {
		fail(err)
	}
	if err := bw.Flush(); err != nil {
		fail(err)
	}
}
