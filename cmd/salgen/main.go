// Command salgen synthesizes the SAL census substitute (see DESIGN.md §3)
// as CSV. The paper's extract has 700k tuples; pass -n 700000 to match.
//
// Usage:
//
//	salgen -n 100000 -seed 42 -out sal.csv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"pgpub/internal/sal"
)

func main() {
	n := flag.Int("n", 100000, "number of tuples")
	seed := flag.Int64("seed", 42, "random seed")
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()

	d, err := sal.Generate(*n, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "salgen: %v\n", err)
		os.Exit(1)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "salgen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriter(w)
	if err := d.WriteCSV(bw); err != nil {
		fmt.Fprintf(os.Stderr, "salgen: %v\n", err)
		os.Exit(1)
	}
	if err := bw.Flush(); err != nil {
		fmt.Fprintf(os.Stderr, "salgen: %v\n", err)
		os.Exit(1)
	}
}
