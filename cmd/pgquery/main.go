// Command pgquery answers aggregate COUNT queries against a published D*
// CSV (SAL schema, as produced by pgpublish) using the stratified,
// perturbation-corrected estimator — the consumer-side workflow: the
// analyst holds only the release plus its announced retention probability.
//
// Usage:
//
// Workload mode builds the serving index once and answers the whole batch
// through it, reporting queries/sec.
//
//	pgquery -in anonymized.csv -p 0.2996 -where "Age=30..50,Gender=M..M" -income 25..49
//	pgquery -in anonymized.csv -p 0.2996 -workload 50 -truth sal.csv -workers 4
//	pgquery -snapshot release.pgsnap -where "Age=30..50" -income 25..49
//	pgquery -manifest release.pgman -where "Age=30..50" -income 25..49
//	pgquery -chain r0.pgsnap,r1.pgsnap,r2.pgsnap
//
// With -chain pgquery audits a release chain instead of answering a
// query: every snapshot is fully verified, the parent-CRC links and
// release numbering are checked, publication parameters must be constant
// across the chain, and each release's stamped guarantee accounting
// (per-release odds-ratio bound, composed multi-release growth Δ_T) is
// recomputed from the parameters and compared. A broken, reordered or
// mis-accounted chain exits non-zero.
//
// With -manifest the query is answered against a sharded release
// (pgpublish -shards): every shard snapshot is checksum-verified against
// the manifest, indexed, and answers compose in shard order — the same
// arithmetic a pgserve coordinator applies over HTTP, so the two agree bit
// for bit.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"sort"
	"strings"
	"time"

	"pgpub/internal/dataset"
	"pgpub/internal/dp"
	"pgpub/internal/obs"
	"pgpub/internal/pg"
	"pgpub/internal/query"
	"pgpub/internal/repub"
	"pgpub/internal/sal"
	"pgpub/internal/serve"
	"pgpub/internal/shard"
	"pgpub/internal/snapshot"
)

func main() {
	in := flag.String("in", "", "published CSV (required unless -snapshot)")
	snap := flag.String("snapshot", "", "publication snapshot (.pgsnap) written by pgpublish -snapshot; replaces -in/-p/-meta")
	manifest := flag.String("manifest", "", "shard manifest (.pgman) written by pgpublish -manifest; answers compose across all shards")
	p := flag.Float64("p", -1, "the release's retention probability (or use -meta)")
	metaPath := flag.String("meta", "", "release metadata JSON written by pgpublish -meta")
	where := flag.String("where", "", "QI predicate: Attr=lo..hi[,Attr=lo..hi...] using attribute labels")
	income := flag.String("income", "", "sensitive predicate: lo..hi income bucket codes (0-49)")
	workload := flag.Int("workload", 0, "instead of one query, run N random queries")
	truth := flag.String("truth", "", "microdata CSV for error reporting (workload mode)")
	seed := flag.Int64("seed", 42, "workload seed")
	workers := flag.Int("workers", 0, "worker goroutines for workload mode (0 = GOMAXPROCS)")
	chain := flag.String("chain", "", "comma-separated release snapshots in order (r0,r1,...); audit the release chain instead of answering a query")
	dpBudgets := flag.String("dp-budgets", "", "ε-budget file (pgserve -dp-budgets): add the exact Laplace noise a DP server would to the answer (docs/DP.md)")
	dpKey := flag.String("dp-key", "", "API key whose noise stream to reproduce (with -dp-budgets)")
	dpSeed := flag.Int64("dp-seed", 0, "the DP server's root noise seed (with -dp-budgets)")
	metrics := flag.Bool("metrics", false, "instrument the serving engine and print the counter/latency report to stderr")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /healthz and /debug/pprof on this address (e.g. :6060)")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "pgquery: %v\n", err)
		os.Exit(1)
	}

	var dpo *dpOffline
	if *dpBudgets != "" {
		if *dpKey == "" {
			fail(fmt.Errorf("-dp-budgets needs -dp-key"))
		}
		ledger, err := dp.LoadBudgets(*dpBudgets)
		if err != nil {
			fail(err)
		}
		b := ledger.Key(*dpKey)
		if b == nil {
			fail(fmt.Errorf("key %q is not provisioned in %s", *dpKey, *dpBudgets))
		}
		dpo = &dpOffline{key: *dpKey, eps: b.PerQuery, seed: *dpSeed}
	} else if *dpKey != "" || *dpSeed != 0 {
		fail(fmt.Errorf("-dp-key/-dp-seed need -dp-budgets"))
	}
	if dpo != nil && (*workload > 0 || *chain != "") {
		fail(fmt.Errorf("-dp-budgets reproduces one served answer; drop -workload/-chain"))
	}

	if *chain != "" {
		if *snap != "" || *in != "" || *manifest != "" {
			fail(fmt.Errorf("-chain audits a release chain; drop -snapshot/-in/-manifest"))
		}
		paths := strings.Split(*chain, ",")
		for i := range paths {
			paths[i] = strings.TrimSpace(paths[i])
		}
		infos, err := repub.VerifyChain(paths)
		if err != nil {
			fail(err)
		}
		fmt.Printf("release chain verified: %d releases, parameters constant, accounting matches Theorems 1-3\n", len(infos))
		fmt.Printf("%-8s %-10s %-10s %8s %8s %8s %12s %12s\n",
			"release", "crc", "parent", "inserts", "deletes", "rows", "odds-ratio", "delta_T")
		for _, ri := range infos {
			fmt.Printf("r%-7d %08x   %08x %8d %8d %8d %12.6f %12.6g\n",
				ri.Chain.Release, ri.CRC, ri.Chain.ParentCRC,
				ri.Chain.Inserts, ri.Chain.Deletes, ri.Rows,
				ri.Chain.OddsRatio, ri.Chain.ComposedDelta)
		}
		return
	}

	var reg *obs.Registry
	if *metrics || *debugAddr != "" {
		reg = obs.NewRegistry()
		if err := reg.PublishExpvar("pgpub"); err != nil {
			fmt.Fprintf(os.Stderr, "pgquery: %v\n", err)
		}
	}
	if *debugAddr != "" {
		srv, err := reg.Serve(*debugAddr)
		if err != nil {
			fail(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "pgquery: debug server on http://%s (/metrics, /healthz, /debug/pprof/)\n", srv.Addr)
	}
	if *metrics {
		defer reg.WriteText(os.Stderr)
	}
	if *manifest != "" {
		if *snap != "" || *in != "" {
			fail(fmt.Errorf("-manifest composes a sharded release; drop -snapshot/-in"))
		}
		start := time.Now()
		g, err := shard.OpenObserved(*manifest, reg)
		if err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "pgquery: opened %d shards (%d published tuples, k=%d, p=%.4f) in %v\n",
			g.Shards(), g.Rows(), g.Manifest.K, g.Manifest.P, time.Since(start).Round(time.Millisecond))
		if *workload > 0 {
			runWorkload(g.Schema(), g, *workload, *seed, *truth, *workers, fail)
			return
		}
		q, err := parseQuery(g.Schema(), *where, *income)
		if err != nil {
			fail(err)
		}
		est, err := g.Count(q)
		if err != nil {
			fail(err)
		}
		if dpo != nil {
			// The coordinator keys its noise on the manifest file's CRC.
			crc, err := snapshot.FileCRC(*manifest)
			if err != nil {
				fail(err)
			}
			est = dpo.noised(crc, g.Schema(), q, est)
		}
		fmt.Printf("estimated count: %.1f\n", est)
		return
	}

	var pub *pg.Published
	if *snap != "" {
		var err error
		pub, _, err = snapshot.Load(*snap)
		if err != nil {
			fail(err)
		}
	} else {
		if *metaPath != "" {
			mf, err := os.Open(*metaPath)
			if err != nil {
				fail(err)
			}
			m, err := pg.ReadMetadata(bufio.NewReader(mf))
			mf.Close()
			if err != nil {
				fail(err)
			}
			*p = m.P
		}
		if *in == "" || *p < 0 {
			fail(fmt.Errorf("-in and -p (or -meta), or -snapshot, are required"))
		}
		f, err := os.Open(*in)
		if err != nil {
			fail(err)
		}
		pub, err = pg.ReadCSV(sal.Schema(), bufio.NewReader(f), *p)
		f.Close()
		if err != nil {
			fail(err)
		}
	}
	schema := pub.Schema
	fmt.Fprintf(os.Stderr, "pgquery: loaded %d published tuples (k=%d, p=%.4f)\n", pub.Len(), pub.K, pub.P)

	if *workload > 0 {
		start := time.Now()
		ix, err := query.NewIndexObserved(pub, reg)
		if err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "pgquery: indexed %d groups in %v\n",
			ix.Groups(), time.Since(start).Round(time.Millisecond))
		runWorkload(schema, ix, *workload, *seed, *truth, *workers, fail)
		return
	}

	q, err := parseQuery(schema, *where, *income)
	if err != nil {
		fail(err)
	}
	est, err := query.Estimate(pub, q)
	if err != nil {
		fail(err)
	}
	if dpo != nil {
		// A single-snapshot server keys its noise on the snapshot header CRC;
		// a CSV-backed server has no CRC and keys on release 0.
		var crc uint32
		if *snap != "" {
			if crc, err = snapshot.HeaderCRC(*snap); err != nil {
				fail(err)
			}
		}
		est = dpo.noised(crc, schema, q, est)
	}
	fmt.Printf("estimated count: %.1f\n", est)
}

// dpOffline reproduces a DP server's noise for one COUNT answer: same
// mechanism, same keying inputs (seed, API key, release CRC, canonical query
// encoding), so the printed estimate matches the served answer bit for bit —
// the offline half of the serving equivalence contract (docs/DP.md).
type dpOffline struct {
	key  string
	eps  float64
	seed int64
}

func (o *dpOffline) noised(crc uint32, schema *dataset.Schema, q query.CountQuery, est float64) float64 {
	m := dp.Mechanism{Seed: o.seed, CRC: crc}
	fmt.Fprintf(os.Stderr, "pgquery: DP mode — reproducing key %q's Laplace draw (ε=%g, release CRC %08x)\n",
		o.key, o.eps, crc)
	return est + m.Noise(o.key, serve.QueryKey(schema, "count", q, nil), 0, 1/o.eps)
}

// parseQuery builds a CountQuery from the -where / -income flags.
func parseQuery(schema *dataset.Schema, where, income string) (query.CountQuery, error) {
	q := query.CountQuery{QI: make([]query.Range, schema.D())}
	for j, a := range schema.QI {
		q.QI[j] = query.Range{Lo: 0, Hi: int32(a.Size() - 1)}
	}
	if where != "" {
		for _, clause := range strings.Split(where, ",") {
			name, rng, ok := strings.Cut(strings.TrimSpace(clause), "=")
			if !ok {
				return q, fmt.Errorf("bad clause %q, want Attr=lo..hi", clause)
			}
			j := schema.QIIndex(name)
			if j < 0 {
				return q, fmt.Errorf("unknown attribute %q", name)
			}
			loS, hiS, ok := strings.Cut(rng, "..")
			if !ok {
				return q, fmt.Errorf("bad range %q, want lo..hi", rng)
			}
			lo, err := schema.QI[j].Code(loS)
			if err != nil {
				return q, err
			}
			hi, err := schema.QI[j].Code(hiS)
			if err != nil {
				return q, err
			}
			if lo > hi {
				return q, fmt.Errorf("inverted range %q", rng)
			}
			q.QI[j] = query.Range{Lo: lo, Hi: hi}
		}
	}
	if income != "" {
		loS, hiS, ok := strings.Cut(income, "..")
		if !ok {
			return q, fmt.Errorf("bad income range %q, want lo..hi", income)
		}
		var lo, hi int
		if _, err := fmt.Sscanf(loS+" "+hiS, "%d %d", &lo, &hi); err != nil {
			return q, fmt.Errorf("bad income range %q: %v", income, err)
		}
		if lo < 0 || hi >= schema.SensitiveDomain() || lo > hi {
			return q, fmt.Errorf("income range %q outside [0,%d]", income, schema.SensitiveDomain()-1)
		}
		mask := make([]bool, schema.SensitiveDomain())
		for x := lo; x <= hi; x++ {
			mask[x] = true
		}
		q.Sensitive = mask
	}
	return q, nil
}

// workloadAnswerer is what runWorkload needs from its backend: a single
// serving index or a sharded release's compose group.
type workloadAnswerer interface {
	AnswerWorkload(qs []query.CountQuery, workers int) ([]float64, error)
}

// runWorkload evaluates N random queries through an already-built answering
// backend, optionally against ground truth, in a single batched pass.
func runWorkload(schema *dataset.Schema, ix workloadAnswerer, n int, seed int64, truthPath string, workers int, fail func(error)) {
	rng := rand.New(rand.NewSource(seed))
	qs, err := query.Workload(schema, query.WorkloadConfig{
		Queries: n, QIFraction: 0.5, RestrictAttrs: 2, SensitiveFraction: 0.4, Rng: rng,
	})
	if err != nil {
		fail(err)
	}
	var d *dataset.Table
	if truthPath != "" {
		f, err := os.Open(truthPath)
		if err != nil {
			fail(err)
		}
		d, err = dataset.ReadCSV(schema, bufio.NewReader(f))
		f.Close()
		if err != nil {
			fail(err)
		}
	}
	start := time.Now()
	ests, err := ix.AnswerWorkload(qs, workers)
	if err != nil {
		fail(err)
	}
	elapsed := time.Since(start)
	var rels []float64
	for i, q := range qs {
		est := ests[i]
		if d == nil {
			fmt.Printf("query %3d: estimate %.1f\n", i, est)
			continue
		}
		tc, err := query.TrueCount(d, q)
		if err != nil {
			fail(err)
		}
		rel := math.NaN()
		if tc > 0 {
			rel = math.Abs(est-float64(tc)) / float64(tc)
			rels = append(rels, rel)
		}
		fmt.Printf("query %3d: estimate %10.1f  truth %8d  relErr %6.1f%%\n", i, est, tc, rel*100)
	}
	if len(rels) > 0 {
		sort.Float64s(rels)
		fmt.Printf("\n%d queries with positive truth: median relErr %.1f%%, p90 %.1f%%\n",
			len(rels), rels[len(rels)/2]*100, rels[len(rels)*9/10]*100)
	}
	fmt.Fprintf(os.Stderr, "pgquery: answered %d queries in %v (%.0f queries/sec)\n",
		len(qs), elapsed.Round(time.Microsecond), float64(len(qs))/elapsed.Seconds())
}
