// Command pgbench regenerates the paper's evaluation artifacts: Table III,
// Figures 2 and 3, and the extra validation/ablation experiments of
// DESIGN.md. Output is a text rendering shaped like the paper's tables.
//
// Usage:
//
//	pgbench -exp all                 # everything (several minutes at -n 100000)
//	pgbench -exp table3a             # privacy guarantees vs k
//	pgbench -exp fig2a -n 50000      # classification error vs k, m=2
//	pgbench -exp breach -trials 400  # Monte-Carlo validation of Theorems 2/3
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime/pprof"

	"pgpub/internal/experiments"
	"pgpub/internal/obs"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table3a|table3b|fig2a|fig2b|fig3a|fig3b|breach|ablation-gen|ablation-tree|cardinality|query|qserve|repub|miners|perf|serve|shard|dp|all")
	n := flag.Int("n", 100000, "SAL microdata cardinality for utility experiments")
	seed := flag.Int64("seed", 42, "random seed")
	reps := flag.Int("reps", 1, "repetitions per utility point (averaged)")
	trials := flag.Int("trials", 200, "Monte-Carlo trials per breach scenario")
	workers := flag.Int("workers", 0, "worker goroutines for sweeps and Monte Carlo (0 = GOMAXPROCS)")
	perfIters := flag.Int("perfiters", 3, "iterations per perf stage (-exp perf)")
	coldN := flag.Int("coldn", 0, "cardinality for the publish-1m/serve-coldstart perf stages (0 skips them; the tracked BENCH_pg.json entries use 1000000)")
	benchout := flag.String("benchout", "", "merge the perf report as JSON into this file (-exp perf), e.g. BENCH_pg.json; refuses to mix runs from different machines or workloads")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	metrics := flag.Bool("metrics", false, "instrument the pipeline and print the counter/phase report on exit")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /healthz and /debug/pprof on this address (e.g. :6060)")
	flag.Parse()

	var reg *obs.Registry
	if *metrics || *debugAddr != "" {
		reg = obs.NewRegistry()
		if err := reg.PublishExpvar("pgpub"); err != nil {
			fmt.Fprintf(os.Stderr, "pgbench: %v\n", err)
		}
	}
	experiments.SetMetrics(reg)
	if *debugAddr != "" {
		srv, err := reg.Serve(*debugAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pgbench: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "pgbench: debug server on http://%s (/metrics, /healthz, /debug/pprof/)\n", srv.Addr)
	}
	if *metrics {
		defer func() {
			fmt.Println("=== metrics ===")
			reg.WriteText(os.Stdout)
		}()
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pgbench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "pgbench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "pgbench: -memprofile: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "pgbench: -memprofile: %v\n", err)
				os.Exit(1)
			}
		}()
	}

	run := func(name string, f func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		fmt.Printf("=== %s ===\n", name)
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "pgbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	run("table3a", func() error {
		rows, err := experiments.TableIIIa()
		if err != nil {
			return err
		}
		fmt.Println("Table III(a): privacy guarantees of PG, p = 0.3 (lambda=0.1, rho1=0.2, |Us|=50)")
		fmt.Print(experiments.RenderTableIII(rows, "k"))
		return nil
	})
	run("table3b", func() error {
		rows, err := experiments.TableIIIb()
		if err != nil {
			return err
		}
		fmt.Println("Table III(b): privacy guarantees of PG, k = 6")
		fmt.Print(experiments.RenderTableIII(rows, "p"))
		return nil
	})

	utility := func(m int, fig func(experiments.UtilityConfig) ([]experiments.UtilityPoint, error), x, title string) func() error {
		return func() error {
			pts, err := fig(experiments.UtilityConfig{N: *n, Seed: *seed, M: m, Reps: *reps, Workers: *workers})
			if err != nil {
				return err
			}
			fmt.Println(title)
			fmt.Print(experiments.RenderUtility(pts, x))
			return nil
		}
	}
	run("fig2a", utility(2, experiments.Figure2, "k",
		fmt.Sprintf("Figure 2(a): classification error vs k (m=2, p=0.3, n=%d)", *n)))
	run("fig2b", utility(3, experiments.Figure2, "k",
		fmt.Sprintf("Figure 2(b): classification error vs k (m=3, p=0.3, n=%d)", *n)))
	run("fig3a", utility(2, experiments.Figure3, "p",
		fmt.Sprintf("Figure 3(a): classification error vs p (m=2, k=6, n=%d)", *n)))
	run("fig3b", utility(3, experiments.Figure3, "p",
		fmt.Sprintf("Figure 3(b): classification error vs p (m=3, k=6, n=%d)", *n)))

	run("breach", func() error {
		scenarios, err := experiments.BreachValidation(experiments.BreachConfig{
			N: 2000, Trials: *trials, Seed: *seed, Workers: *workers,
		})
		if err != nil {
			return err
		}
		fmt.Println("Extra E1: Monte-Carlo validation of Theorems 2 and 3 (0 breaches expected)")
		fmt.Print(experiments.RenderBreach(scenarios))
		return nil
	})
	run("ablation-gen", func() error {
		rows, err := experiments.AblationGeneralizer(*n/5, *seed, 6, 0.3)
		if err != nil {
			return err
		}
		fmt.Println("Extra E2: Phase-2 algorithm ablation (k=6, p=0.3)")
		fmt.Print(experiments.RenderAblationGen(rows))
		return nil
	})
	run("ablation-tree", func() error {
		rows, err := experiments.AblationReconstruction(*n/5, *seed, 6, nil)
		if err != nil {
			return err
		}
		fmt.Println("Extra E3: perturbation-reconstruction ablation (k=6)")
		fmt.Print(experiments.RenderAblationTree(rows))
		return nil
	})
	run("query", func() error {
		rows, err := experiments.QueryUtility(*n/2, *seed, 6, 0.3)
		if err != nil {
			return err
		}
		fmt.Println("Extra E5: aggregate COUNT-query accuracy over D* (k=6, p=0.3)")
		fmt.Print(experiments.RenderQueryUtility(rows))
		return nil
	})
	run("qserve", func() error {
		rep, err := experiments.QueryServing(*n, 1000, *seed, 6, 0.3, *workers)
		if err != nil {
			return err
		}
		fmt.Println("Extra E8: query-serving throughput, scan vs precomputed index (k=6, p=0.3)")
		fmt.Print(experiments.RenderServing(rep))
		return nil
	})
	run("repub", func() error {
		rows, err := experiments.Republication(*trials/3, *seed, 0.3)
		if err != nil {
			return err
		}
		fmt.Println("Extra E6: confidence accumulation across repeated releases (hospital, p=0.3, k=2, worst-case corruption)")
		fmt.Print(experiments.RenderRepublication(rows))
		return nil
	})
	run("miners", func() error {
		rows, err := experiments.MinerComparison(*n/3, *seed, 6, nil)
		if err != nil {
			return err
		}
		fmt.Println("Extra E7: mining-modality comparison on the same D* (k=6)")
		fmt.Print(experiments.RenderMiners(rows))
		return nil
	})
	run("cardinality", func() error {
		rows, err := experiments.CardinalitySweep(nil, *seed, 6, 0.3)
		if err != nil {
			return err
		}
		fmt.Println("Extra E4: PG utility vs microdata cardinality (k=6, p=0.3)")
		fmt.Print(experiments.RenderCardinality(rows))
		return nil
	})

	run("perf", func() error {
		rep, err := experiments.Perf(experiments.PerfConfig{
			N: *n, ColdN: *coldN, Seed: *seed, K: 6, Iters: *perfIters, Workers: *workers, Metrics: reg,
		})
		if err != nil {
			return err
		}
		fmt.Println("Perf: Phase-2 primitives and full pipeline wall-clock")
		fmt.Print(experiments.RenderPerf(rep))
		if *benchout != "" {
			// Merge into the tracked report: same-(stage, workers) blocks are
			// replaced, other blocks and the serve/fleet sections survive, and
			// a run from a different machine or workload is refused instead of
			// silently blended.
			out := rep
			if old, err := readBenchJSON(*benchout); err == nil {
				if out, err = experiments.MergePerf(old, rep); err != nil {
					return err
				}
			}
			if err := writeBenchJSON(*benchout, out); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", *benchout)
		}
		return nil
	})

	run("serve", func() error {
		rows, err := experiments.ServeLoad(experiments.ServeLoadConfig{
			N: *n / 2, Seed: *seed, Workers: *workers,
		})
		if err != nil {
			return err
		}
		fmt.Printf("Serve: closed-loop load against a live pgserve endpoint (n=%d, k=6, p=0.3)\n", *n/2)
		fmt.Print(experiments.RenderServeLoad(rows))
		if *benchout != "" {
			rep, err := readBenchJSON(*benchout)
			if err != nil {
				rep = &experiments.PerfReport{}
			}
			rep.Serve = rows
			if err := writeBenchJSON(*benchout, rep); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", *benchout)
		}
		return nil
	})

	run("shard", func() error {
		srep, err := experiments.ShardLoad(experiments.ShardLoadConfig{
			N: *n / 5, Seed: *seed, Workers: *workers,
		})
		if err != nil {
			return err
		}
		fmt.Printf("Shard: closed-loop load through a fan-out coordinator (k=6, p=0.3)\n")
		fmt.Print(experiments.RenderShardLoad(srep))
		if *benchout != "" {
			rep, err := readBenchJSON(*benchout)
			if err != nil {
				rep = &experiments.PerfReport{}
			}
			rep.Shard = srep
			if err := writeBenchJSON(*benchout, rep); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", *benchout)
		}
		return nil
	})

	run("dp", func() error {
		drep, err := experiments.DPUtility(*n, *seed, 6, 0.3, nil)
		if err != nil {
			return err
		}
		fmt.Printf("DP: COUNT accuracy under the Laplace serving mechanism vs epsilon (k=6, p=0.3, n=%d)\n", *n)
		fmt.Print(experiments.RenderDP(drep))
		if *benchout != "" {
			rep, err := readBenchJSON(*benchout)
			if err != nil {
				rep = &experiments.PerfReport{}
			}
			rep.DP = drep
			if err := writeBenchJSON(*benchout, rep); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", *benchout)
		}
		return nil
	})

	switch *exp {
	case "all", "table3a", "table3b", "fig2a", "fig2b", "fig3a", "fig3b",
		"breach", "ablation-gen", "ablation-tree", "cardinality", "query", "qserve", "repub", "miners", "perf", "serve", "shard", "dp":
	default:
		fmt.Fprintf(os.Stderr, "pgbench: unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}
}

// readBenchJSON loads a tracked perf report, so an experiment can merge its
// section without clobbering the others'.
func readBenchJSON(path string) (*experiments.PerfReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep experiments.PerfReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, err
	}
	return &rep, nil
}

func writeBenchJSON(path string, rep *experiments.PerfReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
