// Command pgattack simulates corruption-aided linking attacks (Section V)
// against a PG publication of the paper's hospital microdata (Table I), and
// reports the adversary's posterior confidence against the analytic bounds
// of Section VI. Use -worstcase to corrupt everyone except the victim — the
// scenario under which conventional generalization fails totally (Lemma 2)
// while PG's guarantees still hold.
//
// Usage:
//
//	pgattack -victim Ellie -corrupt Debbie,Emily -disease bronchitis,pneumonia
//	pgattack -victim Calvin -worstcase -p 0.3 -k 2 -trials 200
//
// With -exp fleet the command instead runs the adversary-at-scale attack
// fleet (internal/attackfleet, docs/ATTACKS.md) against a served SAL
// snapshot — self-published on a loopback port, or an already-running
// pgserve endpoint via -url:
//
//	pgattack -exp fleet -n 100000 -algorithm kd -soak -benchout BENCH_pg.json
//	pgattack -exp fleet -url http://localhost:8080 -n 100000 -seed 42 -json fleet.json
//
// With -exp repub the command runs the multi-release chain adversary: it
// publishes a deterministic re-publication chain in-process (pg.Republish
// over churned microdata), attacks every release with adversaries that
// retain the whole chain, composes the evidence (repub.ComposePosterior),
// and checks each T-release prefix against the composed growth bound the
// release-chain blocks announce — the breach-vs-release-count curve of
// docs/REPUBLICATION.md:
//
//	pgattack -exp repub -n 20000 -releases 5 -benchout BENCH_pg.json
//	pgattack -exp repub -n 8000 -releases 4 -churn 200 -json repub.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"

	"pgpub/internal/attack"
	"pgpub/internal/attackfleet"
	"pgpub/internal/dataset"
	"pgpub/internal/experiments"
	"pgpub/internal/hierarchy"
	"pgpub/internal/obs"
	"pgpub/internal/pg"
	"pgpub/internal/privacy"
	"pgpub/internal/snapshot"
)

func main() {
	exp := flag.String("exp", "", "experiment mode: 'fleet' runs the adversary-at-scale attack fleet; 'repub' runs the multi-release chain adversary")
	victim := flag.String("victim", "Ellie", "victim name (from the voter list)")
	corrupt := flag.String("corrupt", "", "comma-separated corrupted individuals")
	worst := flag.Bool("worstcase", false, "corrupt everyone except the victim (|C| = |E|-1)")
	diseases := flag.String("disease", "bronchitis,pneumonia,SARS,tuberculosis",
		"comma-separated diseases forming the predicate Q")
	p := flag.Float64("p", 0.25, "retention probability")
	k := flag.Int("k", 2, "QI-group size floor")
	algorithm := flag.String("algorithm", "", "Phase-2 algorithm: kd, tds or full-domain (default kd; with -snapshot or -url, validated against the release)")
	snap := flag.String("snapshot", "", "attack a fixed hospital publication snapshot (pgpublish -dataset hospital -snapshot) instead of re-publishing each trial")
	trials := flag.Int("trials", 100, "publication/attack repetitions")
	seed := flag.Int64("seed", 1, "random seed")
	n := flag.Int("n", 0, "fleet: SAL microdata cardinality (0 = 20000)")
	url := flag.String("url", "", "fleet: attack this pgserve endpoint instead of self-serving")
	shards := flag.Int("shards", 0, "fleet: attack a sharded release through its coordinator, one reconstruction per shard (0 = unsharded; with -url, adopted from the coordinator's metadata)")
	victims := flag.Int("victims", 0, "fleet: number of attacked owners (0 = 48)")
	fractions := flag.String("fractions", "", "fleet: comma-separated corruption fractions (default 0,0.25,0.5,0.75,1)")
	workers := flag.Int("workers", 0, "fleet: client-side parallelism (0 = GOMAXPROCS)")
	soak := flag.Bool("soak", false, "fleet: run the serving soak phases (cache/singleflight/limiter/drain) after the attack")
	releases := flag.Int("releases", 0, "repub: chain length T, the release count the adversary retains (0 = 4)")
	churn := flag.Int("churn", 0, "repub: rows deleted and inserted per release (0 = n/50)")
	jsonOut := flag.String("json", "", "fleet: write the report JSON to this file ('-' for stdout)")
	benchout := flag.String("benchout", "", "fleet: merge the report into this tracked perf report, e.g. BENCH_pg.json")
	metrics := flag.Bool("metrics", false, "instrument the repeated publications and print the counter/phase report to stderr")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /healthz and /debug/pprof on this address (e.g. :6060)")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "pgattack: %v\n", err)
		os.Exit(1)
	}

	// Which flags were given explicitly? -snapshot and fleet BaseURL mode
	// adopt unset parameters from the release metadata but must refuse a
	// conflicting explicit value instead of silently checking the wrong
	// guarantee.
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })

	var reg *obs.Registry
	if *metrics || *debugAddr != "" {
		reg = obs.NewRegistry()
		if err := reg.PublishExpvar("pgpub"); err != nil {
			fmt.Fprintf(os.Stderr, "pgattack: %v\n", err)
		}
	}
	if *debugAddr != "" {
		srv, err := reg.Serve(*debugAddr)
		if err != nil {
			fail(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "pgattack: debug server on http://%s (/metrics, /healthz, /debug/pprof/)\n", srv.Addr)
	}
	if *metrics {
		defer reg.WriteText(os.Stderr)
	}

	switch *exp {
	case "":
	case "fleet":
		if err := runFleet(fleetOptions{
			set: set, reg: reg,
			n: *n, seed: *seed, k: *k, p: *p, algorithm: *algorithm,
			url: *url, shards: *shards, victims: *victims, fractions: *fractions,
			workers: *workers, soak: *soak,
			jsonOut: *jsonOut, benchout: *benchout,
		}); err != nil {
			fail(err)
		}
		return
	case "repub":
		if err := runRepub(repubOptions{
			set: set, reg: reg,
			n: *n, seed: *seed, k: *k, p: *p, algorithm: *algorithm,
			releases: *releases, churn: *churn, victims: *victims,
			fractions: *fractions, workers: *workers,
			jsonOut: *jsonOut, benchout: *benchout,
		}); err != nil {
			fail(err)
		}
		return
	default:
		fail(fmt.Errorf("unknown experiment %q (want 'fleet' or 'repub')", *exp))
	}

	d := dataset.Hospital()
	hiers := []*hierarchy.Hierarchy{
		hierarchy.MustInterval(d.Schema.QI[0].Size(), 5, 20),
		hierarchy.MustFlat(d.Schema.QI[1].Size()),
		hierarchy.MustInterval(d.Schema.QI[2].Size(), 5, 20),
	}

	// The attack target's Phase-2 algorithm (trial republication only; with
	// -snapshot the release's own algorithm is validated and adopted below).
	alg := pg.KD
	if *algorithm != "" {
		var err error
		if alg, err = pg.ParseAlgorithm(*algorithm); err != nil {
			fail(err)
		}
	}

	// With -snapshot, the publication is fixed: attack it directly instead of
	// re-publishing, and adopt p, k and the algorithm from the release itself.
	// Explicit flags that contradict the release are an error — computing
	// Theorem 2/3 bounds for parameters the snapshot was not published under
	// would validate the wrong guarantee. The attack is then deterministic,
	// so one trial suffices.
	var fixed *pg.Published
	if *snap != "" {
		var err error
		fixed, _, err = snapshot.Load(*snap)
		if err != nil {
			fail(err)
		}
		if fixed.Schema.D() != d.Schema.D() ||
			fixed.Schema.Sensitive.Size() != d.Schema.Sensitive.Size() {
			fail(fmt.Errorf("snapshot %s is not a hospital publication (use pgpublish -dataset hospital -snapshot)", *snap))
		}
		if set["p"] && *p != fixed.P {
			fail(fmt.Errorf("-p %v conflicts with snapshot %s (published with p=%v); drop the flag to adopt the release's value", *p, *snap, fixed.P))
		}
		if set["k"] && *k != fixed.K {
			fail(fmt.Errorf("-k %d conflicts with snapshot %s (published with k=%d); drop the flag to adopt the release's value", *k, *snap, fixed.K))
		}
		if set["algorithm"] && alg != fixed.Algorithm {
			fail(fmt.Errorf("-algorithm %s conflicts with snapshot %s (published with %v); drop the flag to adopt the release's value", *algorithm, *snap, fixed.Algorithm))
		}
		*p, *k, *trials = fixed.P, fixed.K, 1
		alg = fixed.Algorithm
		fmt.Fprintf(os.Stderr, "pgattack: attacking fixed publication (%d tuples, %v, k=%d, p=%.4f)\n",
			fixed.Len(), fixed.Algorithm, fixed.K, fixed.P)
	}
	ext, err := attack.NewExternal(d, dataset.HospitalVoterQI())
	if err != nil {
		fail(err)
	}

	nameToID := map[string]int{}
	for id, name := range dataset.HospitalNames {
		nameToID[name] = id
	}
	vid, ok := nameToID[*victim]
	if !ok {
		fail(fmt.Errorf("unknown victim %q (choose from %s)", *victim, strings.Join(dataset.HospitalNames, ", ")))
	}

	corrupted := map[int]bool{}
	if *worst {
		for id := range dataset.HospitalNames {
			if id != vid {
				corrupted[id] = true
			}
		}
	} else if *corrupt != "" {
		for _, name := range strings.Split(*corrupt, ",") {
			id, ok := nameToID[strings.TrimSpace(name)]
			if !ok {
				fail(fmt.Errorf("unknown individual %q", name))
			}
			corrupted[id] = true
		}
	}
	if corrupted[vid] {
		fail(fmt.Errorf("the victim cannot be in the corruption set"))
	}

	domain := d.Schema.SensitiveDomain()
	var codes []int32
	for _, name := range strings.Split(*diseases, ",") {
		c, err := d.Schema.Sensitive.Code(strings.TrimSpace(name))
		if err != nil {
			fail(err)
		}
		codes = append(codes, c)
	}
	q, err := privacy.PredicateOf(domain, codes...)
	if err != nil {
		fail(err)
	}

	lambda := 1 / float64(domain) // uniform background knowledge
	rho2Bound, err := privacy.MinRho2(*p, lambda, float64(len(codes))/float64(domain), *k, domain)
	if err != nil {
		fail(err)
	}
	deltaBound, err := privacy.MinDelta(*p, lambda, *k, domain)
	if err != nil {
		fail(err)
	}
	hBound := privacy.HTop(*p, lambda, *k, domain)

	fmt.Printf("victim: %s   corrupted: %d of %d individuals   Q: {%s}\n",
		*victim, len(corrupted), ext.Len()-1, *diseases)
	fmt.Printf("parameters: p=%.2f k=%d; analytic bounds: h<=%.4f, delta-growth<=%.4f, rho2<=%.4f\n\n",
		*p, *k, hBound, deltaBound, rho2Bound)

	rng := rand.New(rand.NewSource(*seed))
	adv := attack.Adversary{Background: privacy.Uniform(domain), Corrupted: corrupted}
	maxH, maxGrowth := 0.0, 0.0
	fmt.Printf("%-6s %-18s %8s %8s %10s %8s\n", "trial", "observed y", "h", "prior", "posterior", "growth")
	for trial := 0; trial < *trials; trial++ {
		pub := fixed
		if pub == nil {
			var err error
			pub, err = pg.Publish(d, hiers, pg.Config{K: *k, P: *p, Algorithm: alg, Rng: rng, Metrics: reg})
			if err != nil {
				fail(err)
			}
		}
		res, err := attack.LinkAttack(pub, ext, vid, adv, q)
		if err != nil {
			fail(err)
		}
		if res.H > maxH {
			maxH = res.H
		}
		if g := res.Posterior - res.Prior; g > maxGrowth {
			maxGrowth = g
		}
		if trial < 10 {
			fmt.Printf("%-6d %-18s %8.4f %8.4f %10.4f %8.4f\n",
				trial, d.Schema.Sensitive.Label(res.Y), res.H, res.Prior,
				res.Posterior, res.Posterior-res.Prior)
		}
	}
	fmt.Printf("\nover %d trials: max h = %.4f (bound %.4f), max growth = %.4f (bound %.4f)\n",
		*trials, maxH, hBound, maxGrowth, deltaBound)
	if maxH <= hBound+1e-9 && maxGrowth <= deltaBound+1e-9 {
		fmt.Println("all attacks stayed within the Theorem 2/3 bounds")
	} else {
		fmt.Println("WARNING: a bound was exceeded — please report this as a bug")
		os.Exit(1)
	}
}

// fleetOptions carries the -exp fleet flag values plus the set of flags the
// user typed explicitly — unset publication parameters are adopted from the
// served release's metadata, explicit ones must match it.
type fleetOptions struct {
	set       map[string]bool
	reg       *obs.Registry
	n         int
	seed      int64
	k         int
	p         float64
	algorithm string
	url       string
	shards    int
	victims   int
	fractions string
	workers   int
	soak      bool
	jsonOut   string
	benchout  string
}

// runFleet runs the adversary-at-scale attack fleet and emits its report.
// A bound violation is a non-zero exit, after the report has been written.
func runFleet(o fleetOptions) error {
	var err error
	cfg := attackfleet.Config{
		BaseURL: o.url, N: o.n, Seed: o.seed, Algorithm: o.algorithm,
		Shards: o.shards, Victims: o.victims, Workers: o.workers,
		Soak: o.soak, Metrics: o.reg,
	}
	// -p/-k defaults describe the hospital attack, not the fleet; only pass
	// them when given explicitly so BaseURL mode can adopt the served values.
	if o.set["p"] {
		cfg.P = o.p
	}
	if o.set["k"] {
		cfg.K = o.k
	}
	if cfg.Fractions, err = parseFractions(o.fractions); err != nil {
		return err
	}

	rep, err := attackfleet.Run(cfg)
	if err != nil {
		return err
	}
	renderFleet(rep)

	if o.jsonOut != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if o.jsonOut == "-" {
			os.Stdout.Write(data)
		} else if err := os.WriteFile(o.jsonOut, data, 0o644); err != nil {
			return err
		}
	}
	if o.benchout != "" {
		if err := mergeFleetBench(o.benchout, rep); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", o.benchout)
	}
	if rep.Violations > 0 {
		return fmt.Errorf("%d Theorem 1-3 bound violations — please report this as a bug", rep.Violations)
	}
	fmt.Println("all adversaries stayed within the Theorem 1-3 bounds")
	return nil
}

// renderFleet prints the human-readable breach curves and soak summary.
func renderFleet(rep *attackfleet.Report) {
	sharded := ""
	if rep.Shards > 0 {
		sharded = fmt.Sprintf(" shards=%d", rep.Shards)
	}
	fmt.Printf("fleet: n=%d rows=%d groups=%d %s k=%d p=%.4f seed=%d%s victims=%d queries=%d\n",
		rep.N, rep.Rows, rep.Groups, rep.Algorithm, rep.K, rep.P, rep.Seed, sharded, rep.Victims, rep.Queries)
	fmt.Printf("bounds: h<=%.4f rho2<=%.4f growth<=%.4f (lambda=%.3f rho1=%.3f)\n\n",
		rep.HBound, rep.Rho2Bound, rep.DeltaBound, rep.Lambda, rep.Rho1)
	for _, m := range rep.Modes {
		// "rho2 post" is the Theorem-2-conditioned maximum: posteriors of
		// plans whose prior confidence was within rho1 (0 when no plan was).
		fmt.Printf("%-6s %10s %10s %10s %12s %10s\n",
			m.Mode, "fraction", "max h", "rho2 post", "mean post", "max growth")
		for _, c := range m.Curve {
			fmt.Printf("%-6s %10.2f %10.4f %10.4f %12.4f %10.4f\n",
				"", c.Fraction, c.MaxH, c.MaxPosterior, c.MeanPosterior, c.MaxGrowth)
		}
		switch m.Mode {
		case "aware":
			if m.RecoveredCutNodes > 0 {
				fmt.Printf("       recovered cut nodes: %d\n", m.RecoveredCutNodes)
			}
		case "probe":
			fmt.Printf("       agree with aware: %d/%d (probe fallbacks: %d)\n",
				m.AgreeWithAware, rep.Victims, m.ProbeFallbacks)
		}
		fmt.Println()
	}
	if s := rep.Soak; s != nil {
		fmt.Printf("soak: %d queries, %.0f qps, p50/p95/p99 = %.0f/%.0f/%.0f us\n",
			s.Queries, s.QPS, s.P50us, s.P95us, s.P99us)
		fmt.Printf("      computed=%d cache=%d coalesced=%d shed=%d timeouts=%d drain ok=%d dropped=%d\n",
			s.Computed, s.CacheHits, s.Coalesced, s.Shed, s.Timeouts, s.DrainOK, s.DrainDropped)
	}
}

// parseFractions parses a comma-separated corruption-fraction list; empty
// input returns nil (the experiment's defaults apply).
func parseFractions(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	var out []float64
	for _, f := range strings.Split(s, ",") {
		var v float64
		if _, err := fmt.Sscanf(strings.TrimSpace(f), "%g", &v); err != nil {
			return nil, fmt.Errorf("bad -fractions entry %q: %v", f, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// repubOptions carries the -exp repub flag values.
type repubOptions struct {
	set       map[string]bool
	reg       *obs.Registry
	n         int
	seed      int64
	k         int
	p         float64
	algorithm string
	releases  int
	churn     int
	victims   int
	fractions string
	workers   int
	jsonOut   string
	benchout  string
}

// runRepub runs the multi-release chain adversary (internal/attackfleet
// MultiRelease) and emits the breach-vs-release-count curve. A composed
// bound violation is a non-zero exit, after the report has been written.
func runRepub(o repubOptions) error {
	cfg := attackfleet.MultiReleaseConfig{
		N: o.n, Seed: o.seed, Algorithm: o.algorithm,
		Releases: o.releases, Churn: o.churn, Victims: o.victims,
		Workers: o.workers, Metrics: o.reg,
	}
	// -p/-k defaults describe the hospital attack; only pass explicit ones.
	if o.set["p"] {
		cfg.P = o.p
	}
	if o.set["k"] {
		cfg.K = o.k
	}
	var err error
	if cfg.Fractions, err = parseFractions(o.fractions); err != nil {
		return err
	}

	rep, err := attackfleet.MultiRelease(cfg)
	if err != nil {
		return err
	}
	renderRepub(rep)

	if o.jsonOut != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if o.jsonOut == "-" {
			os.Stdout.Write(data)
		} else if err := os.WriteFile(o.jsonOut, data, 0o644); err != nil {
			return err
		}
	}
	if o.benchout != "" {
		if err := mergeRepubBench(o.benchout, rep); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", o.benchout)
	}
	if rep.Violations > 0 {
		return fmt.Errorf("%d composed-bound violations — please report this as a bug", rep.Violations)
	}
	fmt.Println("all chain-retaining adversaries stayed within the composed growth bound")
	return nil
}

// renderRepub prints the human-readable breach-vs-release-count curve.
func renderRepub(rep *attackfleet.MultiReleaseReport) {
	fmt.Printf("repub: n=%d releases=%d churn=%d %s k=%d p=%.4f seed=%d victims=%d fractions=%v\n",
		rep.N, rep.Releases, rep.Churn, rep.Algorithm, rep.K, rep.P, rep.Seed, rep.Victims, rep.Fractions)
	fmt.Printf("bounds: h<=%.4f per release, odds ratio R=%.4f (lambda=%.3f); rows per release: %v\n\n",
		rep.HBound, rep.OddsRatioBound, rep.Lambda, rep.Rows)
	fmt.Printf("%10s %10s %10s %12s %10s %12s\n",
		"releases", "max h", "max post", "mean post", "max growth", "bound delta_T")
	for _, pt := range rep.Curve {
		fmt.Printf("%10d %10.4f %10.4f %12.4f %10.4f %12.4f\n",
			pt.Releases, pt.MaxH, pt.MaxPosterior, pt.MeanPosterior, pt.MaxGrowth, pt.Bound)
	}
	fmt.Println()
}

// mergeRepubBench merges the report into the tracked perf report's `repub`
// block, keyed by (n, algorithm, releases), without clobbering the other
// sections.
func mergeRepubBench(path string, rep *attackfleet.MultiReleaseReport) error {
	var pr experiments.PerfReport
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &pr); err != nil {
			return fmt.Errorf("%s: %v", path, err)
		}
	}
	replaced := false
	for i, old := range pr.Repub {
		if old.N == rep.N && old.Algorithm == rep.Algorithm && old.Releases == rep.Releases {
			pr.Repub[i] = rep
			replaced = true
			break
		}
	}
	if !replaced {
		pr.Repub = append(pr.Repub, rep)
	}
	sort.Slice(pr.Repub, func(i, j int) bool {
		if pr.Repub[i].N != pr.Repub[j].N {
			return pr.Repub[i].N < pr.Repub[j].N
		}
		if pr.Repub[i].Algorithm != pr.Repub[j].Algorithm {
			return pr.Repub[i].Algorithm < pr.Repub[j].Algorithm
		}
		return pr.Repub[i].Releases < pr.Repub[j].Releases
	})
	data, err := json.MarshalIndent(&pr, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// mergeFleetBench merges the report into the tracked perf report's `fleet`
// block, keyed by (n, algorithm, shards), without clobbering the other
// sections.
func mergeFleetBench(path string, rep *attackfleet.Report) error {
	var pr experiments.PerfReport
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &pr); err != nil {
			return fmt.Errorf("%s: %v", path, err)
		}
	}
	replaced := false
	for i, old := range pr.Fleet {
		if old.N == rep.N && old.Algorithm == rep.Algorithm && old.Shards == rep.Shards {
			pr.Fleet[i] = rep
			replaced = true
			break
		}
	}
	if !replaced {
		pr.Fleet = append(pr.Fleet, rep)
	}
	sort.Slice(pr.Fleet, func(i, j int) bool {
		if pr.Fleet[i].N != pr.Fleet[j].N {
			return pr.Fleet[i].N < pr.Fleet[j].N
		}
		if pr.Fleet[i].Algorithm != pr.Fleet[j].Algorithm {
			return pr.Fleet[i].Algorithm < pr.Fleet[j].Algorithm
		}
		return pr.Fleet[i].Shards < pr.Fleet[j].Shards
	})
	data, err := json.MarshalIndent(&pr, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
