// Command pgattack simulates corruption-aided linking attacks (Section V)
// against a PG publication of the paper's hospital microdata (Table I), and
// reports the adversary's posterior confidence against the analytic bounds
// of Section VI. Use -worstcase to corrupt everyone except the victim — the
// scenario under which conventional generalization fails totally (Lemma 2)
// while PG's guarantees still hold.
//
// Usage:
//
//	pgattack -victim Ellie -corrupt Debbie,Emily -disease bronchitis,pneumonia
//	pgattack -victim Calvin -worstcase -p 0.3 -k 2 -trials 200
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"pgpub/internal/attack"
	"pgpub/internal/dataset"
	"pgpub/internal/hierarchy"
	"pgpub/internal/obs"
	"pgpub/internal/pg"
	"pgpub/internal/privacy"
	"pgpub/internal/snapshot"
)

func main() {
	victim := flag.String("victim", "Ellie", "victim name (from the voter list)")
	corrupt := flag.String("corrupt", "", "comma-separated corrupted individuals")
	worst := flag.Bool("worstcase", false, "corrupt everyone except the victim (|C| = |E|-1)")
	diseases := flag.String("disease", "bronchitis,pneumonia,SARS,tuberculosis",
		"comma-separated diseases forming the predicate Q")
	p := flag.Float64("p", 0.25, "retention probability")
	k := flag.Int("k", 2, "QI-group size floor")
	snap := flag.String("snapshot", "", "attack a fixed hospital publication snapshot (pgpublish -dataset hospital -snapshot) instead of re-publishing each trial")
	trials := flag.Int("trials", 100, "publication/attack repetitions")
	seed := flag.Int64("seed", 1, "random seed")
	metrics := flag.Bool("metrics", false, "instrument the repeated publications and print the counter/phase report to stderr")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /healthz and /debug/pprof on this address (e.g. :6060)")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "pgattack: %v\n", err)
		os.Exit(1)
	}

	var reg *obs.Registry
	if *metrics || *debugAddr != "" {
		reg = obs.NewRegistry()
		if err := reg.PublishExpvar("pgpub"); err != nil {
			fmt.Fprintf(os.Stderr, "pgattack: %v\n", err)
		}
	}
	if *debugAddr != "" {
		srv, err := reg.Serve(*debugAddr)
		if err != nil {
			fail(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "pgattack: debug server on http://%s (/metrics, /healthz, /debug/pprof/)\n", srv.Addr)
	}
	if *metrics {
		defer reg.WriteText(os.Stderr)
	}

	d := dataset.Hospital()
	hiers := []*hierarchy.Hierarchy{
		hierarchy.MustInterval(d.Schema.QI[0].Size(), 5, 20),
		hierarchy.MustFlat(d.Schema.QI[1].Size()),
		hierarchy.MustInterval(d.Schema.QI[2].Size(), 5, 20),
	}

	// With -snapshot, the publication is fixed: attack it directly instead of
	// re-publishing, and take p and k from the release itself. The attack is
	// then deterministic, so one trial suffices.
	var fixed *pg.Published
	if *snap != "" {
		var err error
		fixed, _, err = snapshot.Load(*snap)
		if err != nil {
			fail(err)
		}
		if fixed.Schema.D() != d.Schema.D() ||
			fixed.Schema.Sensitive.Size() != d.Schema.Sensitive.Size() {
			fail(fmt.Errorf("snapshot %s is not a hospital publication (use pgpublish -dataset hospital -snapshot)", *snap))
		}
		*p, *k, *trials = fixed.P, fixed.K, 1
		fmt.Fprintf(os.Stderr, "pgattack: attacking fixed publication (%d tuples, %v, k=%d, p=%.4f)\n",
			fixed.Len(), fixed.Algorithm, fixed.K, fixed.P)
	}
	ext, err := attack.NewExternal(d, dataset.HospitalVoterQI())
	if err != nil {
		fail(err)
	}

	nameToID := map[string]int{}
	for id, name := range dataset.HospitalNames {
		nameToID[name] = id
	}
	vid, ok := nameToID[*victim]
	if !ok {
		fail(fmt.Errorf("unknown victim %q (choose from %s)", *victim, strings.Join(dataset.HospitalNames, ", ")))
	}

	corrupted := map[int]bool{}
	if *worst {
		for id := range dataset.HospitalNames {
			if id != vid {
				corrupted[id] = true
			}
		}
	} else if *corrupt != "" {
		for _, name := range strings.Split(*corrupt, ",") {
			id, ok := nameToID[strings.TrimSpace(name)]
			if !ok {
				fail(fmt.Errorf("unknown individual %q", name))
			}
			corrupted[id] = true
		}
	}
	if corrupted[vid] {
		fail(fmt.Errorf("the victim cannot be in the corruption set"))
	}

	domain := d.Schema.SensitiveDomain()
	var codes []int32
	for _, name := range strings.Split(*diseases, ",") {
		c, err := d.Schema.Sensitive.Code(strings.TrimSpace(name))
		if err != nil {
			fail(err)
		}
		codes = append(codes, c)
	}
	q, err := privacy.PredicateOf(domain, codes...)
	if err != nil {
		fail(err)
	}

	lambda := 1 / float64(domain) // uniform background knowledge
	rho2Bound, err := privacy.MinRho2(*p, lambda, float64(len(codes))/float64(domain), *k, domain)
	if err != nil {
		fail(err)
	}
	deltaBound, err := privacy.MinDelta(*p, lambda, *k, domain)
	if err != nil {
		fail(err)
	}
	hBound := privacy.HTop(*p, lambda, *k, domain)

	fmt.Printf("victim: %s   corrupted: %d of %d individuals   Q: {%s}\n",
		*victim, len(corrupted), ext.Len()-1, *diseases)
	fmt.Printf("parameters: p=%.2f k=%d; analytic bounds: h<=%.4f, delta-growth<=%.4f, rho2<=%.4f\n\n",
		*p, *k, hBound, deltaBound, rho2Bound)

	rng := rand.New(rand.NewSource(*seed))
	adv := attack.Adversary{Background: privacy.Uniform(domain), Corrupted: corrupted}
	maxH, maxGrowth := 0.0, 0.0
	fmt.Printf("%-6s %-18s %8s %8s %10s %8s\n", "trial", "observed y", "h", "prior", "posterior", "growth")
	for trial := 0; trial < *trials; trial++ {
		pub := fixed
		if pub == nil {
			var err error
			pub, err = pg.Publish(d, hiers, pg.Config{K: *k, P: *p, Rng: rng, Metrics: reg})
			if err != nil {
				fail(err)
			}
		}
		res, err := attack.LinkAttack(pub, ext, vid, adv, q)
		if err != nil {
			fail(err)
		}
		if res.H > maxH {
			maxH = res.H
		}
		if g := res.Posterior - res.Prior; g > maxGrowth {
			maxGrowth = g
		}
		if trial < 10 {
			fmt.Printf("%-6d %-18s %8.4f %8.4f %10.4f %8.4f\n",
				trial, d.Schema.Sensitive.Label(res.Y), res.H, res.Prior,
				res.Posterior, res.Posterior-res.Prior)
		}
	}
	fmt.Printf("\nover %d trials: max h = %.4f (bound %.4f), max growth = %.4f (bound %.4f)\n",
		*trials, maxH, hBound, maxGrowth, deltaBound)
	if maxH <= hBound+1e-9 && maxGrowth <= deltaBound+1e-9 {
		fmt.Println("all attacks stayed within the Theorem 2/3 bounds")
	} else {
		fmt.Println("WARNING: a bound was exceeded — please report this as a bug")
		os.Exit(1)
	}
}
