// Command pgserve serves a published release over HTTP: it loads a
// publication snapshot (pgpublish -snapshot) or a published CSV, builds the
// interval-grid serving index once, and answers aggregate queries through
// the hardened API in internal/serve — the long-running counterpart to the
// one-shot pgquery. SIGINT/SIGTERM trigger a graceful drain: the listener
// closes, in-flight requests complete, and the process exits 0.
//
// Usage:
//
//	pgserve -snapshot release.pgsnap -addr :8080
//	pgserve -snapshot release.pgsnap -mmap -addr :8080
//	pgserve -in anonymized.csv -p 0.2996 -addr :8080 -debug-addr :6060
//	pgserve -coordinator -manifest release.pgman \
//	    -shard-urls http://h0:8081,http://h1:8081 -addr :8080
//
// With -mmap the snapshot's column blocks and prebuilt serving index are
// adopted straight from the file's pages (read-only memory map) instead of
// being parsed and rebuilt: the cold start costs page faults, not a decode.
//
// With -coordinator the process holds no data at all: it loads the shard
// manifest (pgpublish -shards -manifest), validates each shard server
// against it over HTTP, and serves the same /v1 API by fanning queries out
// to the shards with per-shard timeouts and p95-triggered hedged requests,
// merging answers (count/naive/sum additively, avg from per-shard
// sum/weight pairs). A dead shard turns into a 502 naming it.
// See docs/SERVING.md for the API reference and a worked session.
package main

import (
	"bufio"
	"context"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pgpub/internal/dp"
	"pgpub/internal/obs"
	"pgpub/internal/pg"
	"pgpub/internal/query"
	"pgpub/internal/sal"
	"pgpub/internal/serve"
	"pgpub/internal/snapshot"
)

func main() {
	snap := flag.String("snapshot", "", "publication snapshot (.pgsnap) written by pgpublish -snapshot")
	mmapSnap := flag.Bool("mmap", false, "serve the snapshot in place via a read-only memory map (with -snapshot; answers are identical, cold start skips the parse)")
	in := flag.String("in", "", "published CSV with the SAL schema (alternative to -snapshot)")
	p := flag.Float64("p", -1, "the release's retention probability (with -in; or use -meta)")
	metaPath := flag.String("meta", "", "release metadata JSON written by pgpublish -meta (with -in)")
	coordinator := flag.Bool("coordinator", false, "run as a fan-out coordinator over shard servers instead of serving a snapshot")
	manifestPath := flag.String("manifest", "", "shard manifest (.pgman) written by pgpublish -manifest (with -coordinator)")
	shardURLs := flag.String("shard-urls", "", "comma-separated shard server base URLs, one per manifest shard in shard order (with -coordinator)")
	shardTimeout := flag.Duration("shard-timeout", 5*time.Second, "per-shard call deadline at the coordinator, hedges included")
	hedge := flag.Duration("hedge", 25*time.Millisecond, "hedge delay before a shard has a latency history (its live p95 takes over after); negative disables hedging")
	addr := flag.String("addr", ":8080", "API listen address")
	maxInFlight := flag.Int("max-inflight", 0, "concurrent request admission limit (0 = 8*GOMAXPROCS); excess load is shed with 429")
	timeout := flag.Duration("timeout", 10*time.Second, "per-request answer deadline")
	cacheEntries := flag.Int("cache", 4096, "result cache capacity in entries (negative disables)")
	workers := flag.Int("workers", 0, "batch fan-out goroutines (0 = GOMAXPROCS); batch answers are identical for any value")
	dpBudgets := flag.String("dp-budgets", "", "per-API-key ε-budget file (one `key ε_total ε_per_query` per line): serve Laplace-noised answers in differential-privacy mode (docs/DP.md)")
	dpSeed := flag.Int64("dp-seed", 0, "DP noise root seed (0 draws one from crypto/rand; pin only for tests and offline audits)")
	drain := flag.Duration("drain", 30*time.Second, "graceful shutdown deadline after SIGINT/SIGTERM")
	metrics := flag.Bool("metrics", false, "print the counter/latency report to stderr on exit")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /healthz and /debug/pprof on this address (e.g. :6060)")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "pgserve: %v\n", err)
		os.Exit(1)
	}

	reg := obs.NewRegistry()
	if err := reg.PublishExpvar("pgpub"); err != nil {
		fmt.Fprintf(os.Stderr, "pgserve: %v\n", err)
	}
	if *debugAddr != "" {
		srv, err := reg.Serve(*debugAddr)
		if err != nil {
			fail(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "pgserve: debug server on http://%s (/metrics, /healthz, /debug/pprof/)\n", srv.Addr)
	}
	if *metrics {
		defer reg.WriteText(os.Stderr)
	}

	var dpCfg *serve.DPConfig
	if *dpBudgets != "" {
		ledger, err := dp.LoadBudgets(*dpBudgets)
		if err != nil {
			fail(err)
		}
		seed := *dpSeed
		if seed == 0 {
			var b [8]byte
			if _, err := rand.Read(b[:]); err != nil {
				fail(fmt.Errorf("drawing DP seed: %w", err))
			}
			seed = int64(binary.LittleEndian.Uint64(b[:]))
		}
		dpCfg = &serve.DPConfig{Ledger: ledger, Seed: seed}
		fmt.Fprintf(os.Stderr, "pgserve: DP mode on — %d API keys provisioned, Laplace noise over every aggregate (docs/DP.md)\n", ledger.Len())
	} else if *dpSeed != 0 {
		fail(fmt.Errorf("-dp-seed needs -dp-budgets"))
	}

	if *coordinator {
		if *manifestPath == "" || *shardURLs == "" {
			fail(fmt.Errorf("-coordinator requires -manifest and -shard-urls"))
		}
		if *snap != "" || *in != "" {
			fail(fmt.Errorf("-coordinator holds no data; drop -snapshot/-in"))
		}
		man, err := snapshot.LoadManifest(*manifestPath)
		if err != nil {
			fail(err)
		}
		urls := strings.Split(*shardURLs, ",")
		for i := range urls {
			urls[i] = strings.TrimSuffix(strings.TrimSpace(urls[i]), "/")
		}
		manCRC, err := snapshot.FileCRC(*manifestPath)
		if err != nil {
			fail(err)
		}
		coord, err := serve.NewCoordinator(serve.CoordConfig{
			Manifest:       man,
			ShardURLs:      urls,
			ShardTimeout:   *shardTimeout,
			HedgeAfter:     *hedge,
			Metrics:        reg,
			ManifestSource: func() (*snapshot.Manifest, error) { return snapshot.LoadManifest(*manifestPath) },
			DP:             dpCfg,
			CRC:            manCRC,
			CRCSource:      func() (uint32, error) { return snapshot.FileCRC(*manifestPath) },
		})
		if err != nil {
			fail(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), *shardTimeout+5*time.Second)
		err = coord.Start(ctx)
		cancel()
		if err != nil {
			fail(err)
		}
		hs, err := coord.Serve(*addr)
		if err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "pgserve: coordinating %d shards (%d rows total) on http://%s (POST /v1/query, POST /v1/batch, GET /v1/metadata, GET /v1/shards)\n",
			len(man.Shards), man.SourceRows, hs.Addr)
		waitAndDrain(hs, *drain, func() (*serve.ReloadResult, error) {
			ctx, cancel := context.WithTimeout(context.Background(), *shardTimeout+5*time.Second)
			defer cancel()
			return coord.Reload(ctx)
		}, fail)
		return
	}
	if *manifestPath != "" || *shardURLs != "" {
		fail(fmt.Errorf("-manifest/-shard-urls need -coordinator"))
	}

	// Load the release: snapshot (parsed or mapped in place) or CSV +
	// announced p. The mapped path also adopts the snapshot's prebuilt
	// serving index, so ix is already set when it succeeds.
	var (
		pub       *pg.Published
		guarantee *pg.GuaranteeMetadata
		chain     *snapshot.ChainMetadata
		crc       uint32
		source    func() (*serve.ReleaseData, error)
		ix        *query.Index
		err       error
	)
	coldStart := time.Now()
	switch {
	case *snap != "" && *in != "":
		fail(fmt.Errorf("-snapshot and -in are mutually exclusive"))
	case *snap != "":
		if crc, err = snapshot.HeaderCRC(*snap); err != nil {
			fail(err)
		}
		source = serve.SnapshotSource(*snap, *mmapSnap)
		if *mmapSnap {
			if v, verr := snapshot.FileVersion(*snap); verr == nil && v == 1 {
				fail(fmt.Errorf("snapshot %s is format v1, which has no mappable layout; upgrade it by re-saving with a current pgpublish -snapshot (a v2 re-save is byte-stable), or serve it without -mmap", *snap))
			}
			m, err := snapshot.OpenMappedObserved(*snap, reg)
			if err != nil {
				fail(err)
			}
			pub, guarantee, chain, ix = m.Pub, m.Guarantee, m.Chain, m.Index
			mode := "mapped"
			if !m.Mmapped() {
				mode = "read into memory (mmap unavailable)"
			}
			fmt.Fprintf(os.Stderr, "pgserve: snapshot %s in %v\n", mode, time.Since(coldStart).Round(time.Microsecond))
		} else {
			pub, guarantee, chain, err = snapshot.LoadRelease(*snap)
			if err != nil {
				fail(err)
			}
		}
	case *in != "":
		if *metaPath != "" {
			mf, err := os.Open(*metaPath)
			if err != nil {
				fail(err)
			}
			m, err := pg.ReadMetadata(bufio.NewReader(mf))
			mf.Close()
			if err != nil {
				fail(err)
			}
			*p = m.P
			guarantee = m.Guarantee
		}
		if *p < 0 {
			fail(fmt.Errorf("-p (or -meta) is required with -in"))
		}
		f, err := os.Open(*in)
		if err != nil {
			fail(err)
		}
		pub, err = pg.ReadCSV(sal.Schema(), bufio.NewReader(f), *p)
		f.Close()
		if err != nil {
			fail(err)
		}
	default:
		fail(fmt.Errorf("-snapshot or -in is required"))
	}
	fmt.Fprintf(os.Stderr, "pgserve: loaded %d published tuples (%v, k=%d, p=%.4f)\n",
		pub.Len(), pub.Algorithm, pub.K, pub.P)

	if ix == nil {
		start := time.Now()
		ix, err = query.NewIndexObserved(pub, reg)
		if err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "pgserve: indexed %d groups in %v\n",
			ix.Groups(), time.Since(start).Round(time.Millisecond))
	}
	fmt.Fprintf(os.Stderr, "pgserve: cold start complete in %v (%d groups)\n",
		time.Since(coldStart).Round(time.Microsecond), ix.Groups())

	meta := pg.Metadata{
		P: pub.P, K: pub.K, Algorithm: pub.Algorithm.String(), Rows: pub.Len(),
		Guarantee: guarantee,
	}
	if chain != nil {
		fmt.Fprintf(os.Stderr, "pgserve: release %d of a chain (CRC %08x); SIGHUP or POST /v1/admin/reload hot-swaps to its successor\n",
			chain.Release, crc)
	}
	srv, err := serve.New(serve.Config{
		Index:          ix,
		Meta:           meta,
		MaxInFlight:    *maxInFlight,
		RequestTimeout: *timeout,
		CacheEntries:   *cacheEntries,
		Workers:        *workers,
		Metrics:        reg,
		CRC:            crc,
		Chain:          chain,
		Source:         source,
		DP:             dpCfg,
	})
	if err != nil {
		fail(err)
	}
	hs, err := srv.Serve(*addr)
	if err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "pgserve: serving on http://%s (POST /v1/query, POST /v1/batch, GET /v1/metadata)\n", hs.Addr)
	waitAndDrain(hs, *drain, srv.Reload, fail)
}

// waitAndDrain blocks until SIGINT/SIGTERM, then drains in-flight requests
// up to the deadline — shared by the snapshot server and the coordinator.
// SIGHUP triggers reload (the hot-swap to the next release of the chain);
// a rejected or failed reload is logged and the process keeps serving the
// current release — SIGHUP never exits. In particular, a server with no
// snapshot path to reload from (started with -in, or on a chainless
// snapshot) refuses the reload with a clear error instead of swapping.
func waitAndDrain(hs *serve.HTTPServer, drain time.Duration, reload func() (*serve.ReloadResult, error), fail func(error)) {
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM, syscall.SIGHUP)
	for {
		sig := <-sigs
		if sig == syscall.SIGHUP {
			res, err := reload()
			switch {
			case errors.Is(err, serve.ErrReloadRejected):
				fmt.Fprintf(os.Stderr, "pgserve: %v\n", err)
			case err != nil:
				fmt.Fprintf(os.Stderr, "pgserve: reload failed: %v\n", err)
			default:
				fmt.Fprintf(os.Stderr, "pgserve: hot-swapped to release %d (CRC %08x, %d rows)\n",
					res.Release, res.CRC, res.Rows)
			}
			continue
		}
		fmt.Fprintf(os.Stderr, "pgserve: %v received, draining (deadline %v)\n", sig, drain)
		ctx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			hs.Close()
			fail(fmt.Errorf("drain incomplete: %w", err))
		}
		fmt.Fprintln(os.Stderr, "pgserve: drained, bye")
		return
	}
}
