package pgpub

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"pgpub/internal/snapshot"
)

// The curated documentation set whose cross-references CI keeps honest.
// Driver/scratch files (ISSUE.md, SNIPPETS.md, ...) are deliberately out.
var docFiles = []string{
	"README.md",
	"DESIGN.md",
	"EXPERIMENTS.md",
	"docs/ARCHITECTURE.md",
	"docs/ATTACKS.md",
	"docs/DP.md",
	"docs/OBSERVABILITY.md",
	"docs/REPUBLICATION.md",
	"docs/SERVING.md",
}

var mdLink = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

// TestDocLinks resolves every relative markdown link in the documentation
// set and fails on dangling targets, so renames cannot silently orphan the
// docs. External links (http/https/mailto) are not fetched.
func TestDocLinks(t *testing.T) {
	for _, doc := range docFiles {
		data, err := os.ReadFile(doc)
		if err != nil {
			t.Fatalf("%s: %v", doc, err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") ||
				strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") {
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue // pure in-page anchor
			}
			resolved := filepath.Join(filepath.Dir(doc), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: dangling link %q (resolved %s): %v", doc, m[1], resolved, err)
			}
		}
	}
}

// TestDocFilesMentionObsFlags pins the docs-to-code contract introduced with
// the observability layer: the metric names the code records must appear in
// the catalog, so docs/OBSERVABILITY.md cannot rot silently.
func TestDocCatalogCoversMetrics(t *testing.T) {
	data, err := os.ReadFile("docs/OBSERVABILITY.md")
	if err != nil {
		t.Fatal(err)
	}
	catalog := string(data)
	for _, name := range []string{
		"pg.publish", "pg.phase1", "pg.phase2", "pg.phase3",
		"pg.publish.calls", "pg.rows.in", "pg.rows.published",
		"pg.phase1.retained", "pg.phase1.redrawn", "pg.phase2.groups",
		"perturb.em.runs", "perturb.em.iterations",
		"generalize.groupby.rows_scanned", "generalize.tds.rounds",
		"generalize.tds.groups_split", "generalize.tds.groups",
		"generalize.lattice.nodes_evaluated", "generalize.lattice.nodes_pruned",
		"query.index.build", "query.count.latency",
		"query.index.entries", "query.index.nodes", "query.index.grids",
		"query.answered.grid", "query.answered.exact_reanswer", "query.answered.kd",
		"serve.requests.query", "serve.requests.batch", "serve.requests.metadata",
		"serve.errors", "serve.shed", "serve.timeouts",
		"serve.cache.hits", "serve.cache.misses", "serve.cache.evictions",
		"serve.coalesced", "serve.latency.query", "serve.latency.batch",
		"coord.requests.query", "coord.requests.batch", "coord.requests.metadata",
		"coord.errors", "coord.fanout.latency", "coord.hedge.fired",
		"coord.hedge.won", "coord.shard.errors", "coord.shard.timeouts",
		"fleet.queries", "fleet.retries", "fleet.latency.query",
		"fleet.victims", "fleet.violations", "fleet.probe.fallbacks",
		"fleet.cut.nodes", "fleet.soak.dropped",
		"repub.publish", "repub.delta.inserts", "repub.delta.deletes",
		"repub.phase2.reused", "repub.phase2.recomputed",
		"repub.releases", "repub.rows",
		"serve.reload.attempts", "serve.reload.swapped",
		"serve.reload.rejected", "serve.reload.errors",
		"serve.reload.latency", "serve.release",
		"coord.reload.attempts", "coord.reload.swapped",
		"coord.reload.rejected", "coord.reload.errors", "coord.release",
		"dp.queries", "dp.rejected", "dp.spend", "dp.exhausted",
		"dp.remaining.",
	} {
		if !strings.Contains(catalog, name) {
			t.Errorf("docs/OBSERVABILITY.md: metric %q missing from the catalog", name)
		}
	}
}

// TestDocCoversSnapshotV2 pins the snapshot format spec to the code: every
// column block of the version-2 layout must be named in docs/SERVING.md's
// field-level description, along with the structural facts a consumer
// implementing the format needs, so the spec cannot drift from the writer.
func TestDocCoversSnapshotV2(t *testing.T) {
	data, err := os.ReadFile("docs/SERVING.md")
	if err != nil {
		t.Fatal(err)
	}
	spec := string(data)
	for _, name := range snapshot.V2BlockNames() {
		if !strings.Contains(spec, "`"+name+"`") {
			t.Errorf("docs/SERVING.md: v2 block %q missing from the format spec", name)
		}
	}
	for _, fact := range []string{
		"PGSNAP", "CRC-32C", "4096", "length prefix", "-mmap", "OpenMapped",
	} {
		if !strings.Contains(spec, fact) {
			t.Errorf("docs/SERVING.md: format fact %q missing from the spec", fact)
		}
	}
}

// TestDocCoversReleaseChain pins the release-chain spec to the code: every
// field of the version-3 chain block must be named in
// docs/REPUBLICATION.md's field-level table, along with the facts a chain
// producer, auditor or hot-swapping server relies on, so the multi-release
// contract cannot drift from the implementation.
func TestDocCoversReleaseChain(t *testing.T) {
	data, err := os.ReadFile("docs/REPUBLICATION.md")
	if err != nil {
		t.Fatal(err)
	}
	spec := string(data)
	for _, name := range snapshot.ChainFieldNames() {
		if !strings.Contains(spec, "`"+name+"`") {
			t.Errorf("docs/REPUBLICATION.md: chain field %q missing from the spec", name)
		}
	}
	for _, fact := range []string{
		"header CRC", "presence flag", "0x52455055", "ReleaseSeed",
		"-base", "-delta", "-chain", "VerifyChain",
		"/v1/admin/reload", "SIGHUP", "409", "-releases", "-churn",
	} {
		if !strings.Contains(spec, fact) {
			t.Errorf("docs/REPUBLICATION.md: chain fact %q missing from the spec", fact)
		}
	}
}

// TestDocCoversDP pins the differential-privacy serving spec to the code:
// the flags, endpoints, headers, status codes and accounting facts a tenant
// or an auditing client relies on must stay in docs/DP.md.
func TestDocCoversDP(t *testing.T) {
	data, err := os.ReadFile("docs/DP.md")
	if err != nil {
		t.Fatal(err)
	}
	spec := string(data)
	for _, fact := range []string{
		"-dp-budgets", "-dp-seed", "-dp-key",
		"X-API-Key", "X-PG-Release", "/v1/dp/budget",
		"401", "403", "429", "Retry-After",
		"Laplace", "ε_total", "ε_per_query", "ε/2",
		"crypto/rand", "splitmix64", "laplace",
	} {
		if !strings.Contains(spec, fact) {
			t.Errorf("docs/DP.md: fact %q missing from the spec", fact)
		}
	}
}

// TestDocCoversShardManifest pins the sharded-release spec the same way:
// the manifest format facts and the coordinator semantics a client or a
// re-implementing consumer relies on must stay in docs/SERVING.md.
func TestDocCoversShardManifest(t *testing.T) {
	data, err := os.ReadFile("docs/SERVING.md")
	if err != nil {
		t.Fatal(err)
	}
	spec := string(data)
	for _, fact := range []string{
		"PGMAN", ".pgman", "-shards", "-coordinator", "-shard-urls",
		"-hedge", "-shard-timeout", "/v1/shards",
		"502", "shard N:", "round-robin",
	} {
		if !strings.Contains(spec, fact) {
			t.Errorf("docs/SERVING.md: sharding fact %q missing from the spec", fact)
		}
	}
}
