// Package pgpub is a Go implementation of "On Anti-Corruption Privacy
// Preserving Publication" (Tao, Xiao, Li, Zhang — ICDE 2008): perturbed
// generalization (PG), an anonymization technique combining uniform
// perturbation of the sensitive attribute, k-anonymous global recoding of
// the quasi-identifiers, and stratified sampling, which provides
// background-sensitive privacy guarantees (ρ₁-to-ρ₂ and Δ-growth) that hold
// even when an adversary has corrupted arbitrarily many individuals.
//
// The package is a facade over the internal implementation:
//
//   - microdata modelling (schemas, tables, CSV I/O),
//   - generalization hierarchies and three Phase-2 recoding algorithms
//     (kd-cell partitioning, top-down specialization, full-domain search),
//   - the PG pipeline itself (Publish),
//   - the privacy formalism of the paper's Theorems 1–3 (guarantee bounds
//     and retention-probability solvers),
//   - the corruption-aided linking-attack model (NewExternal, LinkAttack),
//   - decision-tree mining of published data (TrainPG, TrainTable),
//   - aggregate COUNT/SUM/AVG estimation over a release, scan-based
//     (EstimateCount) or served from a precomputed index (NewQueryIndex),
//   - a synthetic substitute for the paper's SAL census data
//     (GenerateSAL),
//   - an observability layer (NewMetricsRegistry; thread it through
//     Config.Metrics or NewQueryIndexObserved) with deterministic
//     exporters — see docs/OBSERVABILITY.md, and
//   - a serving layer: binary publication snapshots (SaveSnapshot /
//     LoadSnapshot) and the hardened HTTP query API behind cmd/pgserve
//     (NewServeServer) — see docs/SERVING.md.
//
// A minimal publication round trip:
//
//	d, _ := pgpub.GenerateSAL(100000, 42)
//	p, _ := pgpub.MaxRetentionRho12(0.1, 0.2, 0.45, 6, 50) // Table III level
//	pub, _ := pgpub.Publish(d, pgpub.SALHierarchies(d.Schema), pgpub.Config{K: 6, P: p})
//	pub.WriteCSV(os.Stdout)
//
// # Parallelism and determinism
//
// Publish runs all three phases on a worker pool sized by Config.Workers
// (0 means runtime.GOMAXPROCS(0)). The output is byte-identical for every
// worker count: work is cut into shards of fixed size, and each shard's
// random stream is derived from the publication's root seed and the shard
// index with a splitmix64 mix (internal/par.SplitSeed), so scheduling never
// influences which stream a shard consumes. The root seed is Config.Seed,
// or — when Config.Rng is set — a single Int63 draw from it, so a shared
// Rng advances by exactly one value per Publish call regardless of Workers.
package pgpub

import (
	"pgpub/internal/attack"
	"pgpub/internal/dataset"
	"pgpub/internal/generalize"
	"pgpub/internal/hierarchy"
	"pgpub/internal/mining"
	"pgpub/internal/minv"
	"pgpub/internal/obs"
	"pgpub/internal/pg"
	"pgpub/internal/privacy"
	"pgpub/internal/query"
	"pgpub/internal/repub"
	"pgpub/internal/sal"
	"pgpub/internal/serve"
	"pgpub/internal/snapshot"
)

// Data-model types.
type (
	// Attribute is one microdata column with an integer-coded domain.
	Attribute = dataset.Attribute
	// Schema is a microdata layout: QI attributes plus one sensitive.
	Schema = dataset.Schema
	// Table is a microdata relation D.
	Table = dataset.Table
	// Hierarchy is a generalization taxonomy over an attribute domain.
	Hierarchy = hierarchy.Hierarchy
)

// Publication types.
type (
	// Config parameterizes Publish (K or S, retention probability P, ...).
	Config = pg.Config
	// Published is the anonymized table D*.
	Published = pg.Published
	// Row is one published tuple (generalized box, observed value, G).
	Row = pg.Row
	// RowColumns is the struct-of-arrays view of the published rows (one
	// contiguous array per field, box bounds dim-major).
	RowColumns = pg.RowColumns
	// Algorithm selects the Phase-2 recoding algorithm.
	Algorithm = pg.Algorithm
)

// Phase-2 algorithms.
const (
	// KD is Mondrian-style kd-cell partitioning (the default).
	KD = pg.KD
	// TDS is top-down specialization, the algorithm the paper adapts.
	TDS = pg.TDS
	// FullDomain is Incognito-style full-domain recoding.
	FullDomain = pg.FullDomain
)

// Privacy-formalism types.
type (
	// PDF is an adversary's background knowledge over the sensitive domain.
	PDF = privacy.PDF
	// Predicate is an attack target Q as a membership mask over U^s.
	Predicate = privacy.Predicate
)

// Attack-model types.
type (
	// External is the external database ℰ of the linking-attack model.
	External = attack.External
	// Adversary couples background knowledge with a corruption set 𝒞.
	Adversary = attack.Adversary
	// AttackResult carries an attack's posterior and its derivation.
	AttackResult = attack.Result
	// Conventional is a classic generalized publication (all tuples, exact
	// sensitive values) — the baseline Lemmas 1 and 2 break.
	Conventional = attack.Conventional
	// Recoding is a cut-based global recoding of the QI attributes.
	Recoding = generalize.Recoding
)

// Conventional-generalization baseline (Section III).
var (
	// PublishConventional groups a table under a recoding with s = 1.
	PublishConventional = attack.PublishConventional
	// TopRecoding fully suppresses every QI attribute.
	TopRecoding = generalize.TopRecoding
)

// Mining types.
type (
	// MiningConfig tunes the decision-tree growers.
	MiningConfig = mining.Config
	// PGClassifier is a tree mined from a PG publication.
	PGClassifier = mining.PGClassifier
	// TableClassifier is a tree mined from raw microdata.
	TableClassifier = mining.TableClassifier
)

// Schema construction.
var (
	// NewAttribute creates a discrete attribute from labels.
	NewAttribute = dataset.NewAttribute
	// NewIntAttribute creates an ordered attribute over an integer range.
	NewIntAttribute = dataset.NewIntAttribute
	// NewSchema assembles QI attributes and a sensitive attribute.
	NewSchema = dataset.NewSchema
	// NewTable creates an empty microdata table.
	NewTable = dataset.NewTable
	// ReadCSV loads a table written by Table.WriteCSV.
	ReadCSV = dataset.ReadCSV
)

// Hierarchy construction.
var (
	// NewIntervalHierarchy builds nested fixed-width interval levels.
	NewIntervalHierarchy = hierarchy.NewInterval
	// NewBalancedHierarchy groups codes by a constant fanout per level.
	NewBalancedHierarchy = hierarchy.NewBalanced
	// NewFlatHierarchy offers only full suppression.
	NewFlatHierarchy = hierarchy.NewFlat
)

// Publish runs the three PG phases on the microdata and returns D*.
var Publish = pg.Publish

// Release I/O.
var (
	// ReadPublishedCSV loads a release written by Published.WriteCSV; the
	// retention probability comes from the release metadata.
	ReadPublishedCSV = pg.ReadCSV
	// ReadReleaseMetadata parses the JSON document written by
	// Metadata.Write.
	ReadReleaseMetadata = pg.ReadMetadata
	// InferSchema derives a schema (and table) from an arbitrary CSV.
	InferSchema = dataset.InferSchema
)

// ReleaseMetadata is the publication metadata announced with a release.
type ReleaseMetadata = pg.Metadata

// Guarantee mathematics (Section VI).
var (
	// HTop is the ownership-probability bound h⊤ of Inequality 20.
	HTop = privacy.HTop
	// MinRho2 is the smallest certifiable ρ₂ (Theorem 2) — Table III.
	MinRho2 = privacy.MinRho2
	// MinDelta is the smallest certifiable Δ (Theorem 3) — Table III.
	MinDelta = privacy.MinDelta
	// MaxRetentionRho12 solves for the largest p meeting a ρ₁-to-ρ₂ level.
	MaxRetentionRho12 = privacy.MaxRetentionRho12
	// MaxRetentionDelta solves for the largest p meeting a Δ-growth level.
	MaxRetentionDelta = privacy.MaxRetentionDelta
	// UniformPDF is the zero-knowledge background pdf.
	UniformPDF = privacy.Uniform
	// ExcludingPDF rules out known-impossible values, the (c,l)-diversity
	// background type.
	ExcludingPDF = privacy.Excluding
	// PredicateOf builds an attack target from a value set.
	PredicateOf = privacy.PredicateOf
	// Amplification is the operator's γ (equals Theorem 2's threshold).
	Amplification = privacy.Amplification
	// LocalDPEpsilon is ln γ: the perturbation's ε-local-DP level.
	LocalDPEpsilon = privacy.LocalDPEpsilon
	// RetentionForEpsilon inverts LocalDPEpsilon.
	RetentionForEpsilon = privacy.RetentionForEpsilon
)

// Attack model (Section V).
var (
	// NewExternal builds ℰ from the microdata and a voter list.
	NewExternal = attack.NewExternal
	// LinkAttack performs the corruption-aided linking attack A1–A3.
	LinkAttack = attack.LinkAttack
)

// Mining (Section VII).
var (
	// TrainPG grows a reconstruction-weighted honest tree on a publication.
	TrainPG = mining.TrainPG
	// TrainNBPG fits a reconstruction-corrected naive-Bayes model on a
	// publication (the second mining modality).
	TrainNBPG = mining.TrainNBPG
	// TrainTable grows a tree on raw microdata (the paper's yardsticks).
	TrainTable = mining.TrainTable
	// Accuracy evaluates a classifier against microdata ground truth.
	Accuracy = mining.Accuracy
)

// NBConfig tunes the naive-Bayes miner.
type NBConfig = mining.NBConfig

// Hospital returns the paper's running example: the microdata of Table Ia.
func Hospital() *Table { return dataset.Hospital() }

// HospitalNames lists the voter registration list of Table Ib; index = ID.
func HospitalNames() []string { return dataset.HospitalNames }

// HospitalVoterQI returns the QI vectors of the Table Ib voter list.
func HospitalVoterQI() [][]int32 { return dataset.HospitalVoterQI() }

// HospitalHierarchies builds generalization hierarchies at the granularity
// of the paper's Table Ic for the hospital schema.
func HospitalHierarchies(s *Schema) []*Hierarchy {
	age, err := hierarchy.NewInterval(s.QI[0].Size(), 5, 20)
	if err != nil {
		panic(err) // the hospital schema's domains are static
	}
	gender, err := hierarchy.NewFlat(s.QI[1].Size())
	if err != nil {
		panic(err)
	}
	zip, err := hierarchy.NewInterval(s.QI[2].Size(), 5, 20)
	if err != nil {
		panic(err)
	}
	return []*Hierarchy{age, gender, zip}
}

// SAL census substitute (Section VII-A; see DESIGN.md §3).
var (
	// GenerateSAL synthesizes an n-row SAL table.
	GenerateSAL = sal.Generate
	// SALHierarchies builds the Phase-2 hierarchies for the SAL schema.
	SALHierarchies = sal.Hierarchies
	// SALCategorizer maps Income codes to the paper's m categories.
	SALCategorizer = sal.Categorizer
)

// Aggregate-query types (COUNT estimation over D*).
type (
	// CountQuery is a conjunctive counting predicate over QI ranges and an
	// optional sensitive-value set.
	CountQuery = query.CountQuery
	// QueryRange is one attribute's inclusive code interval.
	QueryRange = query.Range
	// WorkloadConfig drives the random-query generator.
	WorkloadConfig = query.WorkloadConfig
)

// Aggregate-query estimation.
var (
	// TrueCount evaluates a query against microdata ground truth.
	TrueCount = query.TrueCount
	// EstimateCount estimates a query from D* alone (stratified weights,
	// box-uniformity, aggregate perturbation inversion).
	EstimateCount = query.Estimate
	// QueryWorkload generates random counting queries for evaluation.
	QueryWorkload = query.Workload
)

// Indexed query serving: a precomputed structure over one publication that
// answers the scan estimators' queries orders of magnitude faster.
type (
	// QueryIndex answers Count/Naive/Sum/Avg and batched workloads from
	// per-box aggregates under an interval grid and a kd-tree.
	QueryIndex = query.Index
)

var (
	// NewQueryIndex builds the serving index from a publication.
	NewQueryIndex = query.NewIndex
	// NewQueryIndexObserved builds the serving index with build/answer
	// instrumentation recorded in a metrics registry.
	NewQueryIndexObserved = query.NewIndexObserved
)

// Observability (docs/OBSERVABILITY.md). A registry passed via
// Config.Metrics instruments the publication pipeline; a nil registry
// disables all instrumentation at the cost of one branch per site.
type (
	// MetricsRegistry collects counters, gauges and latency histograms and
	// renders them with deterministic text/JSON exporters.
	MetricsRegistry = obs.Registry
	// MetricsSnapshot is a point-in-time copy of a registry's instruments.
	MetricsSnapshot = obs.Snapshot
)

// NewMetricsRegistry creates an empty metrics registry.
var NewMetricsRegistry = obs.NewRegistry

// Re-publication types (Section IX future work; see internal/repub).
type (
	// Series is a sequence of independent PG releases of the microdata.
	Series = repub.Series
	// Observation is one release's evidence about a victim.
	Observation = repub.Observation
)

// Re-publication analysis.
var (
	// PublishSeries produces T independent releases.
	PublishSeries = repub.PublishSeries
	// MultiReleaseAttack composes per-release linking attacks.
	MultiReleaseAttack = repub.MultiReleaseAttack
	// ComposedGrowthBound bounds the growth achievable from T releases.
	ComposedGrowthBound = repub.ComposedGrowthBound
	// MaxRetentionForSeries plans a per-release p for a T-release budget.
	MaxRetentionForSeries = repub.MaxRetentionForSeries
)

// m-invariance (deterministic re-publication; see internal/minv).
type (
	// MInvState is the cross-release signature ledger.
	MInvState = minv.State
	// MInvRelease is one m-invariant publication round.
	MInvRelease = minv.Release
	// MInvSignature is a group's sorted sensitive-value set.
	MInvSignature = minv.Signature
)

// m-invariance operations.
var (
	// NewMInvState starts a fresh ledger for parameter m.
	NewMInvState = minv.NewState
	// VerifyMInvariance checks a release sequence against its tables.
	VerifyMInvariance = minv.Verify
	// IntersectionAttack intersects a victim's signatures across releases.
	IntersectionAttack = minv.IntersectionAttack
)

// Publication snapshots: a versioned, checksummed binary codec carrying a
// complete publication (schema, recoding, rows, guarantee metadata) in one
// file, so serving processes skip publish recomputation. Format spec in
// docs/SERVING.md.
var (
	// SaveSnapshot writes a publication snapshot atomically to a file.
	SaveSnapshot = snapshot.Save
	// LoadSnapshot reads a snapshot file back; the loaded publication
	// reproduces the original's WriteCSV bytes and Metadata exactly.
	LoadSnapshot = snapshot.Load
	// WriteSnapshot serializes a publication snapshot to a writer.
	WriteSnapshot = snapshot.Write
	// ReadSnapshot deserializes a publication snapshot from a reader.
	ReadSnapshot = snapshot.Read
	// OpenSnapshot maps a version-2 snapshot for serving in place: the
	// column blocks and the prebuilt query index adopt the file's pages, so
	// a cold start costs page faults instead of a parse.
	OpenSnapshot = snapshot.OpenMapped
)

// MappedSnapshot is a snapshot opened in place by OpenSnapshot: publication,
// guarantee metadata and serving index aliasing the mapped file.
type MappedSnapshot = snapshot.Mapped

// Network serving layer (cmd/pgserve; API reference in docs/SERVING.md).
type (
	// ServeConfig parameterizes the HTTP serving layer: backend index,
	// admission limit, request timeout, result-cache size, metrics.
	ServeConfig = serve.Config
	// ServeServer answers the /v1 query API over one publication.
	ServeServer = serve.Server
)

// NewServeServer builds the HTTP serving layer over a query index.
var NewServeServer = serve.New

// SUM/AVG estimation over D*.
var (
	// EstimateSum estimates SUM(value(sensitive)) over a QI region.
	EstimateSum = query.EstimateSum
	// EstimateAvg estimates AVG(value(sensitive)) over a QI region.
	EstimateAvg = query.EstimateAvg
	// TrueSum evaluates the SUM against microdata ground truth.
	TrueSum = query.TrueSum
	// IncomeMidpoint maps Income buckets to dollar midpoints.
	IncomeMidpoint = query.IncomeMidpoint
)
