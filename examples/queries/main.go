// Queries: aggregate analytics over a PG release. Publishes a SAL sample,
// then answers COUNT queries from D* alone — stratified weights for the QI
// part, aggregate perturbation inversion for the sensitive part — and
// compares against ground truth and the naive (perturbation-ignoring)
// estimator.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"pgpub"
)

func main() {
	const n, k, p = 50000, 6, 0.3
	d, err := pgpub.GenerateSAL(n, 11)
	if err != nil {
		log.Fatal(err)
	}
	pub, err := pgpub.Publish(d, pgpub.SALHierarchies(d.Schema), pgpub.Config{K: k, P: p, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("published %d of %d tuples (k=%d, p=%.2f)\n\n", pub.Len(), n, k, p)

	// A hand-written analytic question: how many mid-career people
	// (ages 40-59) earn in the top half of the income scale?
	q := pgpub.CountQuery{QI: make([]pgpub.QueryRange, d.Schema.D())}
	for j, a := range d.Schema.QI {
		q.QI[j] = pgpub.QueryRange{Lo: 0, Hi: int32(a.Size() - 1)}
	}
	ageIdx := d.Schema.QIIndex("Age")
	lo, err := d.Schema.QI[ageIdx].Code("40")
	if err != nil {
		log.Fatal(err)
	}
	hi, err := d.Schema.QI[ageIdx].Code("59")
	if err != nil {
		log.Fatal(err)
	}
	q.QI[ageIdx] = pgpub.QueryRange{Lo: lo, Hi: hi}
	mask := make([]bool, d.Schema.SensitiveDomain())
	for x := 25; x < 50; x++ {
		mask[x] = true
	}
	q.Sensitive = mask

	truth, err := pgpub.TrueCount(d, q)
	if err != nil {
		log.Fatal(err)
	}
	est, err := pgpub.EstimateCount(pub, q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Q: COUNT(age in [40,59] AND income >= $50k)")
	fmt.Printf("  truth (microdata, secret): %d\n", truth)
	fmt.Printf("  estimate from D* alone:    %.0f  (%.1f%% relative error)\n\n",
		est, math.Abs(est-float64(truth))/float64(truth)*100)

	// A random workload with error statistics.
	rng := rand.New(rand.NewSource(12))
	qs, err := pgpub.QueryWorkload(d.Schema, pgpub.WorkloadConfig{
		Queries: 60, QIFraction: 0.5, RestrictAttrs: 2, SensitiveFraction: 0.4, Rng: rng,
	})
	if err != nil {
		log.Fatal(err)
	}
	var sum float64
	used := 0
	for _, wq := range qs {
		tc, err := pgpub.TrueCount(d, wq)
		if err != nil {
			log.Fatal(err)
		}
		if tc < n/100 {
			continue
		}
		e, err := pgpub.EstimateCount(pub, wq)
		if err != nil {
			log.Fatal(err)
		}
		sum += math.Abs(e-float64(tc)) / float64(tc)
		used++
	}
	fmt.Printf("random workload: %d mid-selectivity queries, mean relative error %.1f%%\n",
		used, sum/float64(used)*100)
}
