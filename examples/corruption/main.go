// Corruption: why PG exists. Demonstrates, on the paper's hospital example,
// (1) the Section I attack — corrupting Bob reveals Calvin's disease under
// conventional 2-anonymous generalization (the essence of Lemma 2), and
// (2) that the same adversary gains almost nothing against a PG publication,
// with the posterior capped by the bounds of Theorems 2 and 3.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"pgpub"
)

func main() {
	d := pgpub.Hospital()
	names := pgpub.HospitalNames()
	ext, err := pgpub.NewExternal(d, pgpub.HospitalVoterQI())
	if err != nil {
		log.Fatal(err)
	}

	// --- Part 1: conventional generalization fails under corruption ---
	rec, err := pgpub.TopRecoding(d.Schema, pgpub.HospitalHierarchies(d.Schema))
	if err != nil {
		log.Fatal(err)
	}
	conv, err := pgpub.PublishConventional(d, rec)
	if err != nil {
		log.Fatal(err)
	}
	const calvin = 1 // victim of the Section I example
	fmt.Println("Conventional generalization, adversary corrupts everyone except the victim:")
	got, err := conv.TotalCorruptionAttack(ext, calvin)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %s's disease reconstructed EXACTLY: %s (posterior confidence 1.0 — Lemma 2)\n\n",
		names[calvin], d.Schema.Sensitive.Label(got))

	// --- Part 2: PG resists the same adversary ---
	domain := d.Schema.SensitiveDomain()
	const p, k = 0.3, 2
	hBound := pgpub.HTop(p, 1/float64(domain), k, domain)
	deltaBound, err := pgpub.MinDelta(p, 1/float64(domain), k, domain)
	if err != nil {
		log.Fatal(err)
	}

	adv := pgpub.Adversary{
		Background: pgpub.UniformPDF(domain),
		Corrupted:  map[int]bool{},
	}
	for id := range names {
		if id != calvin {
			adv.Corrupted[id] = true // |C| = |E| - 1, the worst case
		}
	}
	truth := d.Sensitive(ext.RowOf(calvin))
	q, err := pgpub.PredicateOf(domain, truth)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("PG (p=%.1f, k=%d), the SAME worst-case adversary, 200 fresh publications:\n", p, k)
	rng := rand.New(rand.NewSource(1))
	maxPost, maxGrowth := 0.0, 0.0
	for trial := 0; trial < 200; trial++ {
		pub, err := pgpub.Publish(d, pgpub.HospitalHierarchies(d.Schema),
			pgpub.Config{K: k, P: p, Rng: rng})
		if err != nil {
			log.Fatal(err)
		}
		res, err := pgpub.LinkAttack(pub, ext, calvin, adv, q)
		if err != nil {
			log.Fatal(err)
		}
		if res.Posterior > maxPost {
			maxPost = res.Posterior
		}
		if g := res.Posterior - res.Prior; g > maxGrowth {
			maxGrowth = g
		}
	}
	fmt.Printf("  worst posterior about %s's true disease: %.4f (prior was %.4f)\n",
		names[calvin], maxPost, 1/float64(domain))
	fmt.Printf("  worst confidence growth: %.4f, analytic Delta bound: %.4f (h <= %.4f)\n",
		maxGrowth, deltaBound, hBound)
	fmt.Println("  -> corruption of every other individual still cannot pin down the victim.")
}
