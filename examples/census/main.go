// Census: the utility workflow of Section VII at laptop scale. Generates a
// SAL census sample, publishes it with PG at a Table III guarantee level,
// mines a decision tree from D* with reconstruction weighting, and compares
// its classification accuracy against the optimistic and pessimistic
// yardsticks.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"pgpub"
)

func main() {
	const (
		n      = 50000
		k      = 6
		m      = 2 // income categories: [0,24] vs [25,49]
		lambda = 0.1
		rho1   = 0.2
		rho2   = 0.45 // the Table III level for k = 6
	)

	d, err := pgpub.GenerateSAL(n, 7)
	if err != nil {
		log.Fatal(err)
	}
	classOf, err := pgpub.SALCategorizer(m)
	if err != nil {
		log.Fatal(err)
	}

	// Pick the maximum retention probability that still certifies the
	// 0.2-to-0.45 guarantee (Section VI's parameter-selection rule).
	p, err := pgpub.MaxRetentionRho12(lambda, rho1, rho2, k, d.Schema.SensitiveDomain())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("solved retention probability p = %.4f for the %.2f-to-%.2f level at k = %d\n",
		p, rho1, rho2, k)

	pub, err := pgpub.Publish(d, pgpub.SALHierarchies(d.Schema), pgpub.Config{K: k, P: p, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("published %d of %d tuples\n\n", pub.Len(), d.Len())

	// PG: mine D* directly.
	pgClf, err := pgpub.TrainPG(pub, classOf, m, pgpub.MiningConfig{})
	if err != nil {
		log.Fatal(err)
	}
	pgAcc := pgpub.Accuracy(pgClf.Predict, d, classOf)

	// Optimistic: a clean random subset of size |D|/k.
	rng := rand.New(rand.NewSource(8))
	sub, err := d.RandomSubset(n/k, rng)
	if err != nil {
		log.Fatal(err)
	}
	opt, err := pgpub.TrainTable(sub, classOf, m, pgpub.MiningConfig{})
	if err != nil {
		log.Fatal(err)
	}
	optAcc := pgpub.Accuracy(opt.Predict, d, classOf)

	// Pessimistic: the same subset with fully randomized incomes.
	randomized := sub.Clone()
	for i := 0; i < randomized.Len(); i++ {
		randomized.SetSensitive(i, int32(rng.Intn(randomized.Schema.SensitiveDomain())))
	}
	pes, err := pgpub.TrainTable(randomized, classOf, m, pgpub.MiningConfig{})
	if err != nil {
		log.Fatal(err)
	}
	pesAcc := pgpub.Accuracy(pes.Predict, d, classOf)

	fmt.Printf("classification accuracy on the microdata (m = %d):\n", m)
	fmt.Printf("  PG          %.2f%%   (mined from D* alone)\n", pgAcc*100)
	fmt.Printf("  optimistic  %.2f%%   (clean |D|/k subset — no privacy)\n", optAcc*100)
	fmt.Printf("  pessimistic %.2f%%   (fully randomized subset — no utility)\n", pesAcc*100)
	fmt.Println("\nPG stays close to optimistic while carrying the anti-corruption guarantee.")
}
