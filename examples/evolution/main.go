// Evolution: re-publication, the future-work direction of the paper's
// Section IX, from both angles this repository implements.
//
// Part 1 (probabilistic, package repub): repeatedly PG-publishing the same
// microdata lets a worst-case-corrupting adversary compose observations;
// the demo shows the growth accumulating and the per-release retention
// probability a publisher must plan for a multi-release budget.
//
// Part 2 (deterministic, package minv): when the microdata itself evolves
// (insertions/deletions) and is re-anonymized, the intersection attack
// shrinks a victim's candidate values — unless releases are m-invariant.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"pgpub"
)

func main() {
	// ---- Part 1: composing PG releases ----
	d := pgpub.Hospital()
	ext, err := pgpub.NewExternal(d, pgpub.HospitalVoterQI())
	if err != nil {
		log.Fatal(err)
	}
	domain := d.Schema.SensitiveDomain()
	const p, k = 0.3, 2
	lambda := 1 / float64(domain)

	fmt.Println("Part 1 — composing repeated PG releases (worst-case corruption):")
	fmt.Printf("%-4s %12s %12s %14s\n", "T", "maxGrowth", "bound", "planned p(T)")
	rng := rand.New(rand.NewSource(1))
	for _, T := range []int{1, 2, 4, 8} {
		bound, err := pgpub.ComposedGrowthBound(T, p, lambda, k, domain)
		if err != nil {
			log.Fatal(err)
		}
		planned, err := pgpub.MaxRetentionForSeries(T, lambda, 0.3, k, domain)
		if err != nil {
			log.Fatal(err)
		}
		maxGrowth := 0.0
		for trial := 0; trial < 40; trial++ {
			series, err := pgpub.PublishSeries(d, pgpub.HospitalHierarchies(d.Schema),
				pgpub.Config{K: k, P: p}, T, rng)
			if err != nil {
				log.Fatal(err)
			}
			victim := 1 // Calvin
			adv := pgpub.Adversary{Background: pgpub.UniformPDF(domain), Corrupted: map[int]bool{}}
			for id := range pgpub.HospitalNames() {
				if id != victim {
					adv.Corrupted[id] = true
				}
			}
			q, err := pgpub.PredicateOf(domain, d.Sensitive(ext.RowOf(victim)))
			if err != nil {
				log.Fatal(err)
			}
			_, prior, post, err := pgpub.MultiReleaseAttack(series, ext, victim, adv, q)
			if err != nil {
				log.Fatal(err)
			}
			if g := post - prior; g > maxGrowth {
				maxGrowth = g
			}
		}
		fmt.Printf("%-4d %12.4f %12.4f %14.4f\n", T, maxGrowth, bound, planned)
	}
	fmt.Println("-> leakage accumulates with T; the planner shrinks p to compensate.")

	// ---- Part 2: m-invariance on evolving data ----
	fmt.Println("\nPart 2 — m-invariant re-publication of evolving microdata:")
	schema, err := pgpub.NewSchema(
		[]*pgpub.Attribute{mustAttr(pgpub.NewIntAttribute("ID", 0, 63))},
		mustAttr(pgpub.NewIntAttribute("Condition", 0, 7)),
	)
	if err != nil {
		log.Fatal(err)
	}
	mkTable := func(owners []int) *pgpub.Table {
		t := pgpub.NewTable(schema)
		for _, o := range owners {
			if err := t.Append([]int32{int32(o), int32(o % 8)}); err != nil {
				log.Fatal(err)
			}
			t.Owners = append(t.Owners, o)
		}
		return t
	}
	present := [][]int{rangeInts(0, 31), rangeInts(8, 47), rangeInts(16, 63)}
	st, err := pgpub.NewMInvState(3)
	if err != nil {
		log.Fatal(err)
	}
	rng2 := rand.New(rand.NewSource(2))
	var releases []*pgpub.MInvRelease
	var tables []*pgpub.Table
	for t, owners := range present {
		tbl := mkTable(owners)
		rel, err := st.Publish(tbl, rng2)
		if err != nil {
			log.Fatal(err)
		}
		releases = append(releases, rel)
		tables = append(tables, tbl)
		fmt.Printf("release %d: %d tuples, %d groups, %d counterfeits\n",
			t+1, tbl.Len(), len(rel.Groups), rel.Counterfeits())
	}
	if err := pgpub.VerifyMInvariance(releases, tables); err != nil {
		log.Fatal(err)
	}
	worst := 99
	for _, victim := range rangeInts(16, 31) { // alive in all releases
		cand, ok := pgpub.IntersectionAttack(releases, victim)
		if !ok {
			log.Fatalf("victim %d missing", victim)
		}
		if len(cand) < worst {
			worst = len(cand)
		}
	}
	fmt.Printf("intersection attack on full-history victims: >= %d candidates everywhere (m = 3)\n", worst)
	fmt.Println("-> signatures persist across releases, so intersections never shrink below m.")
}

func mustAttr(a *pgpub.Attribute, err error) *pgpub.Attribute {
	if err != nil {
		log.Fatal(err)
	}
	return a
}

func rangeInts(lo, hi int) []int {
	out := make([]int, 0, hi-lo+1)
	for o := lo; o <= hi; o++ {
		out = append(out, o)
	}
	return out
}
