// Quickstart: the paper's running example. Publishes the hospital microdata
// of Table Ia with perturbed generalization at the parameters of the
// Table II walkthrough (p = 0.25, s = 0.5, hence k = 2), prints the
// intermediate and final tables, and reports the privacy guarantees.
package main

import (
	"fmt"
	"log"
	"os"

	"pgpub"
)

func main() {
	// The microdata D of Table Ia (Bob, Calvin, Debbie, ... with their
	// diseases) ships with the library as the canonical example.
	d := pgpub.Hospital()
	fmt.Println("Microdata D (Table Ia):")
	if err := d.WriteCSV(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Generalization hierarchies at the granularity of Table Ic: 5-year and
	// 20-year Age bands, 5k and 20k Zipcode bands, Gender suppressible only.
	hiers := pgpub.HospitalHierarchies(d.Schema)

	// Publish with the Table II parameters. Phase 1 perturbs Disease with
	// retention probability 0.25; Phase 2 builds 2-anonymous QI-groups;
	// Phase 3 samples one tuple per group and attaches the group size G.
	pub, err := pgpub.Publish(d, hiers, pgpub.Config{S: 0.5, P: 0.25, Seed: 2008})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nPublished D* (cf. Table IIc): %d of %d tuples, k = %d\n",
		pub.Len(), d.Len(), pub.K)
	if err := pub.WriteCSV(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// The background-sensitive guarantees of Theorems 2 and 3, against
	// adversaries with 0.1-skewed knowledge and prior confidence <= 0.2.
	rho2, delta, err := pub.Guarantees(0.1, 0.2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nGuarantees vs 0.1-skewed adversaries: 0.20-to-%.2f, %.2f-growth\n", rho2, delta)
	fmt.Println("These hold even if the adversary corrupts every other individual (Section VI).")
}
