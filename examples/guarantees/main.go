// Guarantees: the publisher's parameter-planning workflow of Section VI.
// For a range of target guarantee levels, solves the maximum retention
// probability p (more retention = more utility) that Theorems 2 and 3 still
// certify, and prints the resulting publication plan — the inverse reading
// of the paper's Table III.
package main

import (
	"fmt"
	"log"
)

import "pgpub"

func main() {
	const (
		lambda = 0.1 // background-knowledge skew the publisher defends against
		rho1   = 0.2 // prior-confidence bound of the rho1-to-rho2 guarantee
		domain = 50  // |U^s|: the SAL Income domain
	)

	fmt.Println("Planning p for rho1-to-rho2 levels (lambda=0.1, rho1=0.2, |Us|=50):")
	fmt.Printf("%-6s %-8s %-10s %-14s\n", "k", "rho2", "max p", "delta at p")
	for _, k := range []int{2, 4, 6, 8, 10} {
		for _, rho2 := range []float64{0.4, 0.5, 0.6} {
			p, err := pgpub.MaxRetentionRho12(lambda, rho1, rho2, k, domain)
			if err != nil {
				log.Fatal(err)
			}
			delta, err := pgpub.MinDelta(p, lambda, k, domain)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-6d %-8.2f %-10.4f %-14.4f\n", k, rho2, p, delta)
		}
	}

	fmt.Println("\nPlanning p for delta-growth levels:")
	fmt.Printf("%-6s %-8s %-10s\n", "k", "delta", "max p")
	for _, k := range []int{2, 6, 10} {
		for _, delta := range []float64{0.1, 0.2, 0.3} {
			p, err := pgpub.MaxRetentionDelta(lambda, delta, k, domain)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-6d %-8.2f %-10.4f\n", k, delta, p)
		}
	}

	fmt.Println("\nReading: a higher k (smaller sample) or a looser target permits more")
	fmt.Println("retention; p = 0 means only a fully randomized release meets the level.")
}
