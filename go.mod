module pgpub

go 1.22
